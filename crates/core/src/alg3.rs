use cuba_explore::{ExplicitEngine, ExploreBudget, LayerView, SubsumptionMode};
use cuba_pds::{Cpds, VisibleState};

use crate::engine::{Applicability, Backend, Engine, RoundCtx, RoundInfo, RoundOutcome};
use crate::{
    check_fcr, compute_z, ConvergenceMethod, CubaError, EngineUsed, GeneratorSet, GrowthLog,
    Property, SequenceEvent, Verdict,
};

/// Configuration for Algorithm 3 runs.
#[derive(Debug, Clone)]
pub struct Alg3Config {
    /// Exploration budgets.
    pub budget: ExploreBudget,
    /// Give up (Undetermined) after this many rounds.
    pub max_k: usize,
    /// Skip the FCR pre-check (explicit variant only).
    pub skip_fcr_check: bool,
    /// Subsumption mode for the symbolic variant.
    pub subsumption: SubsumptionMode,
    /// Also conclude from a collapse of the underlying state sequence
    /// (`Rk = Rk+1` / no new symbolic states). An extension beyond the
    /// paper's Alg. 3 that is trivially sound (Lemma 7); disable to
    /// benchmark the pure generator test.
    pub use_state_collapse: bool,
    /// A precomputed `G ∩ Z` for this system, shared by a
    /// [`SuiteCache`](crate::SuiteCache) across the problems of a
    /// suite ("one system, many properties"). `None` computes it from
    /// scratch; `G ∩ Z` depends only on the CPDS, never the property.
    pub g_cap_z: Option<std::sync::Arc<Vec<VisibleState>>>,
}

impl Default for Alg3Config {
    fn default() -> Self {
        Alg3Config {
            budget: ExploreBudget::default(),
            max_k: 64,
            skip_fcr_check: false,
            subsumption: SubsumptionMode::Exact,
            use_state_collapse: true,
            g_cap_z: None,
        }
    }
}

/// Result of an Algorithm 3 run.
#[derive(Debug, Clone)]
pub struct Alg3Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Rounds computed.
    pub rounds: usize,
    /// Total stored states (global or symbolic).
    pub states: usize,
    /// `|T(Rk)|` per bound.
    pub visible_growth: GrowthLog,
    /// The precomputed `G ∩ Z` (diagnostics; Ex. 14 prints it).
    pub g_cap_z: Vec<VisibleState>,
    /// Plateaus whose generator test failed (bounds `k−1` where the
    /// algorithm "skipped forward", as in Ex. 14's k = 2).
    pub rejected_plateaus: Vec<usize>,
}

/// The round logic of Alg. 3, independent of how rounds are produced.
/// Each round supplies the new visible states; the driver checks the
/// property, the plateau condition
/// `|T(Rk−2)| < |T(Rk−1)| = |T(Rk)|`, and the generator condition
/// `G∩Z ⊆ T(Rk)`.
#[derive(Debug)]
struct Alg3Driver {
    property: Property,
    /// Shared with the suite cache when one is in play — iterated
    /// only, so the share is zero-copy.
    g_cap_z: std::sync::Arc<Vec<VisibleState>>,
    visible_growth: GrowthLog,
    rejected_plateaus: Vec<usize>,
    use_state_collapse: bool,
}

impl Alg3Driver {
    fn new(cpds: &Cpds, property: &Property, config: &Alg3Config) -> Self {
        let g_cap_z = match &config.g_cap_z {
            Some(shared) => shared.clone(),
            None => {
                let generators = GeneratorSet::from_cpds(cpds);
                let z = compute_z(cpds);
                std::sync::Arc::new(generators.intersect(z.states.iter()))
            }
        };
        Alg3Driver {
            property: property.clone(),
            g_cap_z,
            visible_growth: GrowthLog::new(),
            rejected_plateaus: Vec::new(),
            use_state_collapse: config.use_state_collapse,
        }
    }

    /// Processes round `k` from its bound-indexed [`LayerView`]: the
    /// newly seen visible states, the cumulative `|T(Rk)|`, and
    /// whether the state sequence had collapsed by `k`. Returns the
    /// sequence event and the verdict, if any. All queries are
    /// bound-indexed, so a replayed round produces byte-identical
    /// results to a live one.
    fn round(&mut self, view: &LayerView, backend: &Backend) -> (SequenceEvent, Option<Verdict>) {
        let k = view.k;
        let event = self.visible_growth.push(view.visible);
        if let Some(_v) = self.property.find_violation(view.new_visible.iter()) {
            return (event, Some(Verdict::Unsafe { k, witness: None }));
        }
        if self.use_state_collapse && view.collapsed {
            return (
                event,
                Some(Verdict::Safe {
                    k: k - 1,
                    method: ConvergenceMethod::RkCollapse,
                }),
            );
        }
        // Line 4: a *new* plateau at k−1 triggers the generator test
        // `G∩Z ⊆ T(Rk)`, evaluated against the first-seen bounds so it
        // stays exact when the shared layers run deeper than `k`.
        if k >= 1 && event == SequenceEvent::NewPlateau {
            if backend.missing_by(&self.g_cap_z, k).is_empty() {
                return (
                    event,
                    Some(Verdict::Safe {
                        k: k - 1,
                        method: ConvergenceMethod::GeneratorTest,
                    }),
                );
            }
            self.rejected_plateaus.push(k - 1);
        }
        (event, None)
    }
}

/// Algorithm 3 as a resumable round-stepper (one struct for both
/// state representations — see [`Alg3Engine::explicit`] and
/// [`Alg3Engine::symbolic`]).
///
/// Each [`step`](Engine::step) computes one more bound of `(T(Rk))`
/// (resp. `(T(Sk))`) and applies the paper's plateau + generator
/// tests; the monolithic [`alg3_explicit`]/[`alg3_symbolic`] loops
/// delegate here.
#[derive(Debug)]
pub struct Alg3Engine {
    cpds: Cpds,
    property: Property,
    budget: ExploreBudget,
    max_k: usize,
    backend: Backend,
    driver: Alg3Driver,
    next_k: usize,
    /// `states` at the last computed bound (bound-indexed, so shared
    /// layers running deeper do not inflate this engine's report).
    /// Doubles as the previous round's count when computing
    /// `delta_states`.
    states: usize,
    verdict: Option<Verdict>,
}

impl Alg3Engine {
    /// Algorithm 3 over `(T(Rk))` with explicit state sets (paper
    /// §4.1.4), on a private explorer. Performs the FCR pre-check
    /// unless the config skips it.
    ///
    /// # Errors
    ///
    /// [`CubaError::FcrRequired`] when the FCR check fails.
    pub fn explicit(
        cpds: &Cpds,
        property: &Property,
        config: &Alg3Config,
    ) -> Result<Self, CubaError> {
        Self::explicit_with(cpds, property, config, || {
            Backend::explicit(cpds, config.budget.clone())
        })
    }

    /// Algorithm 3 over `(T(Sk))` with PSA-backed symbolic state sets
    /// (the paper's fallback when FCR fails, App. E), on a private
    /// explorer.
    pub fn symbolic(cpds: &Cpds, property: &Property, config: &Alg3Config) -> Self {
        Self::symbolic_with(
            cpds,
            property,
            config,
            Backend::symbolic(cpds, config.budget.clone(), config.subsumption),
        )
    }

    /// As [`explicit`](Self::explicit), borrowing a (possibly shared)
    /// explicit backend. The backend is supplied lazily so a failing
    /// FCR pre-check never constructs (or caches) an explorer for a
    /// system the engine refuses to analyze.
    pub(crate) fn explicit_with(
        cpds: &Cpds,
        property: &Property,
        config: &Alg3Config,
        backend: impl FnOnce() -> Backend,
    ) -> Result<Self, CubaError> {
        if !config.skip_fcr_check && !check_fcr(cpds).holds() {
            return Err(CubaError::FcrRequired);
        }
        Ok(Self::with_backend(cpds, property, config, backend()))
    }

    /// As [`symbolic`](Self::symbolic), borrowing a (possibly shared)
    /// symbolic backend.
    pub(crate) fn symbolic_with(
        cpds: &Cpds,
        property: &Property,
        config: &Alg3Config,
        backend: Backend,
    ) -> Self {
        Self::with_backend(cpds, property, config, backend)
    }

    fn with_backend(
        cpds: &Cpds,
        property: &Property,
        config: &Alg3Config,
        backend: Backend,
    ) -> Self {
        Alg3Engine {
            cpds: cpds.clone(),
            property: property.clone(),
            budget: config.budget.clone(),
            max_k: config.max_k,
            driver: Alg3Driver::new(cpds, property, config),
            backend,
            next_k: 0,
            states: 0,
            verdict: None,
        }
    }

    fn conclude(&mut self, round: Option<RoundInfo>, verdict: Verdict) -> RoundOutcome {
        self.verdict = Some(verdict.clone());
        RoundOutcome::Concluded { round, verdict }
    }

    /// Consumes the engine into the classic report.
    pub fn into_report(self) -> Alg3Report {
        let rounds = self.rounds();
        Alg3Report {
            verdict: self.verdict.unwrap_or_else(|| Verdict::Undetermined {
                reason: "engine not run to conclusion".to_owned(),
            }),
            rounds,
            states: self.states,
            visible_growth: self.driver.visible_growth,
            g_cap_z: self.driver.g_cap_z.as_ref().clone(),
            rejected_plateaus: self.driver.rejected_plateaus,
        }
    }
}

impl Engine for Alg3Engine {
    fn id(&self) -> EngineUsed {
        // The fused variant attributes an Rk/Sk-collapse conclusion to
        // the Scheme 1 rule it borrowed, as the paper's race would.
        let collapse = matches!(
            &self.verdict,
            Some(Verdict::Safe {
                method: ConvergenceMethod::RkCollapse | ConvergenceMethod::SkCollapse,
                ..
            })
        );
        match (self.backend.is_symbolic(), collapse) {
            (false, false) => EngineUsed::Alg3Explicit,
            (false, true) => EngineUsed::Scheme1Explicit,
            (true, false) => EngineUsed::Alg3Symbolic,
            (true, true) => EngineUsed::Scheme1Symbolic,
        }
    }

    fn applicability(&self, cpds: &Cpds) -> Applicability {
        if self.backend.is_symbolic() || check_fcr(cpds).holds() {
            Applicability::Applicable
        } else {
            Applicability::Inapplicable(
                "explicit-state Algorithm 3 requires finite context reachability",
            )
        }
    }

    fn step(&mut self, ctx: &mut RoundCtx) -> Result<RoundOutcome, CubaError> {
        if let Some(verdict) = &self.verdict {
            return Ok(RoundOutcome::Concluded {
                round: None,
                verdict: verdict.clone(),
            });
        }
        ctx.interrupt.check().map_err(CubaError::Explore)?;
        if self.next_k > self.max_k {
            let verdict = Verdict::Undetermined {
                reason: format!("no convergence within {} rounds", self.max_k),
            };
            return Ok(self.conclude(None, verdict));
        }
        let started = std::time::Instant::now();
        let k = self.next_k;
        let interrupt = self.budget.interrupt.merged(&ctx.interrupt);
        let live = self.backend.ensure(k, &interrupt)?;
        let view = self.backend.view(k);
        let replayed = k > 0 && !live;
        let (event, maybe_verdict) = self.driver.round(&view, &self.backend);
        self.next_k += 1;
        let states = view.states;
        let info = RoundInfo {
            k,
            states,
            delta_states: if replayed {
                0
            } else {
                states.saturating_sub(self.states)
            },
            elapsed: started.elapsed().max(std::time::Duration::from_nanos(1)),
            event,
            replayed,
        };
        self.states = states;
        match maybe_verdict {
            None => Ok(RoundOutcome::Continue(info)),
            Some(mut verdict) => {
                if self.backend.is_symbolic() {
                    if let Verdict::Safe { method, .. } = &mut verdict {
                        if *method == ConvergenceMethod::RkCollapse {
                            *method = ConvergenceMethod::SkCollapse;
                        }
                    }
                    verdict =
                        attach_symbolic_witness(verdict, &self.cpds, &self.property, &self.budget);
                } else {
                    verdict = self
                        .backend
                        .with_explicit(|e| attach_witness(verdict.clone(), e, &self.property))
                        .unwrap_or(verdict);
                }
                Ok(self.conclude(Some(info), verdict))
            }
        }
    }

    fn rounds(&self) -> usize {
        self.next_k.saturating_sub(1).min(self.max_k)
    }

    fn states(&self) -> usize {
        self.states
    }

    fn store_key(&self) -> Option<usize> {
        Some(self.backend.store_key())
    }

    fn frontier(&self) -> usize {
        self.backend.depth()
    }

    fn growth(&self) -> &GrowthLog {
        &self.driver.visible_growth
    }

    fn verdict(&self) -> Option<&Verdict> {
        self.verdict.as_ref()
    }
}

/// Drives an [`Alg3Engine`] to conclusion.
fn run_to_conclusion(mut engine: Alg3Engine) -> Result<Alg3Report, CubaError> {
    let mut ctx = RoundCtx::new();
    loop {
        if let RoundOutcome::Concluded { .. } = engine.step(&mut ctx)? {
            return Ok(engine.into_report());
        }
    }
}

/// Algorithm 3 over `(T(Rk))` with explicit state sets (needs FCR):
/// visible-state reachability with stuttering detection via generator
/// sets (paper §4.1.4). Delegates to [`Alg3Engine`].
///
/// # Errors
///
/// Returns [`CubaError::FcrRequired`] when the FCR check fails, or a
/// budget error from the engine.
pub fn alg3_explicit(
    cpds: &Cpds,
    property: &Property,
    config: &Alg3Config,
) -> Result<Alg3Report, CubaError> {
    run_to_conclusion(Alg3Engine::explicit(cpds, property, config)?)
}

/// Algorithm 3 over `(T(Sk))` with PSA-backed symbolic state sets (the
/// paper's fallback when FCR fails, App. E). Delegates to
/// [`Alg3Engine`].
///
/// # Errors
///
/// Returns a budget error when the symbolic state set explodes — the
/// analogue of the paper's OOM on Stefan-1×8.
pub fn alg3_symbolic(
    cpds: &Cpds,
    property: &Property,
    config: &Alg3Config,
) -> Result<Alg3Report, CubaError> {
    run_to_conclusion(Alg3Engine::symbolic(cpds, property, config))
}

/// Reconstructs a concrete path for a symbolic refutation with the
/// bounded witness search (best effort: the refutation stands even
/// when the reconstruction gives up).
pub(crate) fn attach_symbolic_witness(
    verdict: Verdict,
    cpds: &Cpds,
    property: &Property,
    budget: &cuba_explore::ExploreBudget,
) -> Verdict {
    match verdict {
        Verdict::Unsafe { k, witness: None } => {
            let witness =
                cuba_explore::bounded_witness_search(cpds, &|v| property.violated_by(v), k, budget);
            Verdict::Unsafe { k, witness }
        }
        other => other,
    }
}

pub(crate) fn attach_witness(
    verdict: Verdict,
    engine: &ExplicitEngine,
    property: &Property,
) -> Verdict {
    match verdict {
        Verdict::Unsafe { k, witness: None } => {
            let witness = engine
                .layer(k)
                .find(|s| property.violated_by(&s.visible()))
                .and_then(|s| engine.find(s))
                .map(|id| engine.witness(id));
            Verdict::Unsafe { k, witness }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use cuba_pds::{SharedState, StackSym};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    /// Ex. 14 end-to-end: Alg. 3 rejects the fake plateau at k = 2 and
    /// concludes safety at the real collapse k = 5 via the generator
    /// test. `use_state_collapse` is off to exercise the pure paper
    /// algorithm ((Rk) diverges on Fig. 1, so collapse can't trigger).
    #[test]
    fn fig1_example14_collapse_at_5() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let report = alg3_explicit(&fig1(), &Property::True, &config).unwrap();
        match &report.verdict {
            Verdict::Safe { k, method } => {
                assert_eq!(*k, 5);
                assert_eq!(*method, ConvergenceMethod::GeneratorTest);
            }
            other => panic!("expected Safe at 5, got {other:?}"),
        }
        // The fake plateau at k = 2 was rejected.
        assert_eq!(report.rejected_plateaus, vec![2]);
        // G∩Z as computed in Ex. 14.
        assert_eq!(
            report.g_cap_z,
            vec![vis(0, &[Some(1), None]), vis(0, &[Some(1), Some(6)])]
        );
        // |T(R0..6)| = 1,3,6,6,7,8,8 (Fig. 1 table).
        assert_eq!(report.visible_growth.sizes(), &[1, 3, 6, 6, 7, 8, 8]);
    }

    /// The symbolic variant reproduces the same Fig. 1 run.
    #[test]
    fn fig1_symbolic_matches_explicit() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let report = alg3_symbolic(&fig1(), &Property::True, &config).unwrap();
        match &report.verdict {
            Verdict::Safe { k, method } => {
                assert_eq!(*k, 5);
                assert_eq!(*method, ConvergenceMethod::GeneratorTest);
            }
            other => panic!("expected Safe at 5, got {other:?}"),
        }
        assert_eq!(report.visible_growth.sizes(), &[1, 3, 6, 6, 7, 8, 8]);
    }

    /// Alg. 3 over T(Sk) handles the FCR-violating Fig. 2.
    #[test]
    fn fig2_symbolic_proves_safety() {
        let report = alg3_symbolic(&fig2(), &Property::True, &Alg3Config::default()).unwrap();
        match &report.verdict {
            Verdict::Safe { k, .. } => assert!(*k <= 6),
            other => panic!("expected Safe, got {other:?}"),
        }
    }

    /// Explicit Alg. 3 refuses Fig. 2 (no FCR).
    #[test]
    fn fig2_explicit_requires_fcr() {
        let err = alg3_explicit(&fig2(), &Property::True, &Alg3Config::default()).unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    /// Bug finding: ⟨1|2,6⟩ first appears at k = 5 (Fig. 1 table), and
    /// Alg. 3 reports exactly that bound with a replayable witness.
    #[test]
    fn fig1_unsafe_at_5_with_witness() {
        let cpds = fig1();
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let report = alg3_explicit(&cpds, &property, &Alg3Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 5);
                let w = witness.expect("witness available");
                assert!(w.replay(&cpds));
                assert!(property.violated_by(&w.end().visible()));
            }
            other => panic!("expected Unsafe at 5, got {other:?}"),
        }
    }

    /// Alg. 3 is *tight*: for an unreachable target it still stops at
    /// the minimal convergence bound (k = 5 for Fig. 1), not earlier.
    #[test]
    fn alg3_is_tight() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let property = Property::never_visible(vis(2, &[Some(1), Some(5)]));
        let report = alg3_explicit(&fig1(), &property, &config).unwrap();
        assert!(matches!(report.verdict, Verdict::Safe { k: 5, .. }));
    }

    /// With the state-collapse extension on, Fig. 2's symbolic run may
    /// conclude via Sk collapse; the verdict must still be Safe.
    #[test]
    fn fig2_sk_collapse_extension() {
        let config = Alg3Config {
            use_state_collapse: true,
            ..Alg3Config::default()
        };
        let report = alg3_symbolic(&fig2(), &Property::True, &config).unwrap();
        assert!(report.verdict.is_safe());
    }

    /// Round-stepping surface: the engine yields one RoundOutcome per
    /// bound with the Fig. 1 event pattern, repeats its verdict after
    /// conclusion, and reports the same data as the monolithic run.
    #[test]
    fn engine_steps_match_fig1_events() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let mut engine = Alg3Engine::explicit(&fig1(), &Property::True, &config).unwrap();
        let mut ctx = RoundCtx::new();
        let mut events = Vec::new();
        let verdict = loop {
            match engine.step(&mut ctx).unwrap() {
                RoundOutcome::Continue(info) => events.push((info.k, info.event)),
                RoundOutcome::Concluded { round, verdict } => {
                    let info = round.expect("concluded on a computed round");
                    events.push((info.k, info.event));
                    break verdict;
                }
            }
        };
        assert!(matches!(verdict, Verdict::Safe { k: 5, .. }));
        assert_eq!(
            events,
            vec![
                (0, SequenceEvent::Grew),
                (1, SequenceEvent::Grew),
                (2, SequenceEvent::Grew),
                (3, SequenceEvent::NewPlateau), // the fake plateau (Ex. 14)
                (4, SequenceEvent::Grew),
                (5, SequenceEvent::Grew),
                (6, SequenceEvent::NewPlateau), // the real collapse
            ]
        );
        // Stepping a concluded engine repeats the verdict, computes
        // nothing, and stays side-effect free.
        let rounds = engine.rounds();
        match engine.step(&mut ctx).unwrap() {
            RoundOutcome::Concluded { round: None, .. } => {}
            other => panic!("expected repeated conclusion, got {other:?}"),
        }
        assert_eq!(engine.rounds(), rounds);
    }
}
