//! Bookkeeping for observation sequences (paper §3, Table 1).
//!
//! Observation sequences are monotone (`Ok ⊆ Ok+1`), so their growth
//! is fully described by the sequence of sizes `|Ok|`. [`GrowthLog`]
//! records those sizes and answers the Table 1 questions — *plateau*,
//! *stutter*, *collapse* — as far as they are decidable from a finite
//! prefix (stuttering and convergence are properties of the entire
//! infinite sequence; the whole point of Algorithm 3 is to decide them
//! early with generator sets).

/// What happened at the latest recorded bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceEvent {
    /// The observation grew: `Ok−1 ⊊ Ok`.
    Grew,
    /// A fresh plateau started: `Ok−2 ⊊ Ok−1 = Ok`.
    NewPlateau,
    /// An ongoing plateau continued: `Ok−2 = Ok−1 = Ok`.
    OngoingPlateau,
}

/// Records `|O0|, |O1|, …` for a monotone observation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrowthLog {
    sizes: Vec<usize>,
}

impl GrowthLog {
    /// An empty log.
    pub fn new() -> Self {
        GrowthLog::default()
    }

    /// Records `|Ok|` for the next `k` and classifies the step.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than the previous record — the
    /// sequence would not be monotone, which indicates an engine bug.
    pub fn push(&mut self, size: usize) -> SequenceEvent {
        if let Some(&last) = self.sizes.last() {
            assert!(size >= last, "observation sequence must be monotone");
        }
        self.sizes.push(size);
        let n = self.sizes.len();
        if n >= 2 && self.sizes[n - 1] == self.sizes[n - 2] {
            if n >= 3 && self.sizes[n - 2] == self.sizes[n - 3] {
                SequenceEvent::OngoingPlateau
            } else {
                SequenceEvent::NewPlateau
            }
        } else {
            SequenceEvent::Grew
        }
    }

    /// Number of recorded bounds.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The recorded sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Whether the sequence *plateaus at* `k0` (Table 1):
    /// `Ok0 = Ok0+1`. Requires both bounds to be recorded.
    pub fn plateaus_at(&self, k0: usize) -> Option<bool> {
        if k0 + 1 >= self.sizes.len() {
            return None;
        }
        Some(self.sizes[k0] == self.sizes[k0 + 1])
    }

    /// Whether, **within the recorded prefix**, the sequence stutters
    /// at `k0`: it plateaus at `k0` yet grows at some later recorded
    /// bound. A `false` answer is conclusive only if the sequence is
    /// known to have collapsed by the end of the log.
    pub fn stutters_at(&self, k0: usize) -> Option<bool> {
        let p = self.plateaus_at(k0)?;
        if !p {
            return Some(false);
        }
        Some((k0 + 1..self.sizes.len() - 1).any(|k| self.sizes[k] < self.sizes[k + 1]))
    }

    /// The start of the final plateau in the recorded prefix, i.e. the
    /// smallest `k0` with `Ok0 = … = O(last)`. `None` if the last step
    /// grew.
    pub fn final_plateau_start(&self) -> Option<usize> {
        let n = self.sizes.len();
        if n < 2 || self.sizes[n - 1] != self.sizes[n - 2] {
            return None;
        }
        let last = self.sizes[n - 1];
        let mut k0 = n - 1;
        while k0 > 0 && self.sizes[k0 - 1] == last {
            k0 -= 1;
        }
        Some(k0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodes the Fig. 1 visible-state sequence:
    /// |T(R0..6)| = 1,3,6,6,7,8,8.
    fn fig1_visible_log() -> GrowthLog {
        let mut log = GrowthLog::new();
        for s in [1usize, 3, 6, 6, 7, 8, 8] {
            log.push(s);
        }
        log
    }

    #[test]
    fn events_classify_growth_and_plateaus() {
        let mut log = GrowthLog::new();
        assert_eq!(log.push(1), SequenceEvent::Grew);
        assert_eq!(log.push(3), SequenceEvent::Grew);
        assert_eq!(log.push(6), SequenceEvent::Grew);
        assert_eq!(log.push(6), SequenceEvent::NewPlateau);
        assert_eq!(log.push(7), SequenceEvent::Grew);
        assert_eq!(log.push(8), SequenceEvent::Grew);
        assert_eq!(log.push(8), SequenceEvent::NewPlateau);
        assert_eq!(log.push(8), SequenceEvent::OngoingPlateau);
    }

    /// Table 1, "plateaus at k0": Ok0 = Ok0+1.
    #[test]
    fn plateau_detection_matches_fig1() {
        let log = fig1_visible_log();
        assert_eq!(log.plateaus_at(2), Some(true)); // T(R2) = T(R3)
        assert_eq!(log.plateaus_at(3), Some(false));
        assert_eq!(log.plateaus_at(5), Some(true)); // T(R5) = T(R6)
        assert_eq!(log.plateaus_at(6), None); // beyond the prefix
    }

    /// Table 1, "stutters at k0": plateau that later resumes growth.
    #[test]
    fn stutter_detection_matches_fig1() {
        let log = fig1_visible_log();
        assert_eq!(log.stutters_at(2), Some(true)); // fake plateau
        assert_eq!(log.stutters_at(0), Some(false)); // grew, no plateau
                                                     // k0 = 5 is the real collapse: no later growth in the prefix.
        assert_eq!(log.stutters_at(5), Some(false));
    }

    #[test]
    fn final_plateau_start() {
        let log = fig1_visible_log();
        assert_eq!(log.final_plateau_start(), Some(5));
        let mut growing = GrowthLog::new();
        growing.push(1);
        growing.push(2);
        assert_eq!(growing.final_plateau_start(), None);
        let mut all_flat = GrowthLog::new();
        for _ in 0..4 {
            all_flat.push(2);
        }
        assert_eq!(all_flat.final_plateau_start(), Some(0));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_push_panics() {
        let mut log = GrowthLog::new();
        log.push(5);
        log.push(4);
    }

    #[test]
    fn empty_log() {
        let log = GrowthLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.plateaus_at(0), None);
        assert_eq!(log.stutters_at(0), None);
        assert_eq!(log.final_plateau_start(), None);
        assert_eq!(log.sizes(), &[] as &[usize]);
    }

    /// The earliest possible plateau: `|O0| = |O1|`. The first push is
    /// always `Grew` (there is no predecessor to plateau against), the
    /// second classifies as a fresh plateau at k = 1.
    #[test]
    fn first_plateau_at_k1() {
        let mut log = GrowthLog::new();
        assert_eq!(log.push(2), SequenceEvent::Grew);
        assert_eq!(log.push(2), SequenceEvent::NewPlateau);
        assert_eq!(log.plateaus_at(0), Some(true));
        assert_eq!(log.final_plateau_start(), Some(0));
        // Not a stutter within this prefix: no later growth recorded.
        assert_eq!(log.stutters_at(0), Some(false));
        // Growth resuming turns it into a stutter.
        assert_eq!(log.push(3), SequenceEvent::Grew);
        assert_eq!(log.stutters_at(0), Some(true));
        assert_eq!(log.final_plateau_start(), None);
    }

    /// A single recorded bound answers no plateau/stutter questions.
    #[test]
    fn single_entry_log() {
        let mut log = GrowthLog::new();
        log.push(1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.plateaus_at(0), None);
        assert_eq!(log.stutters_at(0), None);
        assert_eq!(log.final_plateau_start(), None);
    }

    /// Equal sizes forever: the plateau starts at 0 and every bound
    /// plateaus, with no stutter anywhere.
    #[test]
    fn all_flat_log_never_stutters() {
        let mut log = GrowthLog::new();
        for _ in 0..5 {
            log.push(7);
        }
        for k0 in 0..3 {
            assert_eq!(log.plateaus_at(k0), Some(true));
            assert_eq!(log.stutters_at(k0), Some(false));
        }
        assert_eq!(log.final_plateau_start(), Some(0));
    }
}
