use cuba_explore::ExploreError;
use cuba_pds::PdsError;

/// Errors raised by the CUBA algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CubaError {
    /// An exploration budget was exhausted.
    Explore(ExploreError),
    /// The input system is malformed.
    Model(PdsError),
    /// An explicit algorithm was asked to run on a system that fails
    /// the FCR check (its per-round sets may be infinite); use the
    /// symbolic variants instead (§6 overall procedure).
    FcrRequired,
    /// The property names states, threads or stack symbols that do not
    /// exist in the model (see [`Property::validate`](crate::Property::validate)).
    /// Such a property can never be violated, so running it would
    /// report a vacuous `safe`; it is rejected at session start
    /// instead.
    InvalidProperty(String),
}

impl std::fmt::Display for CubaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CubaError::Explore(e) => write!(f, "exploration failed: {e}"),
            CubaError::Model(e) => write!(f, "invalid model: {e}"),
            CubaError::FcrRequired => write!(
                f,
                "explicit-state analysis requires finite context reachability"
            ),
            CubaError::InvalidProperty(msg) => write!(f, "invalid property: {msg}"),
        }
    }
}

impl std::error::Error for CubaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubaError::Explore(e) => Some(e),
            CubaError::Model(e) => Some(e),
            CubaError::FcrRequired | CubaError::InvalidProperty(_) => None,
        }
    }
}

impl From<ExploreError> for CubaError {
    fn from(e: ExploreError) -> Self {
        CubaError::Explore(e)
    }
}

impl From<PdsError> for CubaError {
    fn from(e: PdsError) -> Self {
        CubaError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CubaError::from(ExploreError::StateBudgetExceeded { limit: 7 });
        assert!(e.to_string().contains("exploration failed"));
        assert!(e.source().is_some());
        assert!(CubaError::FcrRequired.source().is_none());
        let e = CubaError::InvalidProperty("names shared state 99".to_owned());
        assert!(e.to_string().contains("invalid property"));
        assert!(e.source().is_none());
    }
}
