//! Typed events streamed by an [`AnalysisSession`](crate::AnalysisSession).
//!
//! The observation-sequence paradigm (§3) is about *watching* how
//! reachability sets evolve round by round — grow, plateau, collapse.
//! Sessions surface exactly that: one [`SessionEvent::RoundCompleted`]
//! per computed bound per engine, engine conclusions, arm failures,
//! and the final verdict.

use crate::{CubaError, CubaOutcome, EngineUsed, SequenceEvent, Verdict};

/// One event in a session's stream.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// An engine finished computing bound `k`.
    RoundCompleted {
        /// The engine that computed the round.
        engine: EngineUsed,
        /// The context bound of the round.
        k: usize,
        /// States stored by that engine after the round.
        states: usize,
        /// States the round added (the frontier delta a
        /// [`SchedulePolicy`](crate::SchedulePolicy) watches).
        delta_states: usize,
        /// Wall-clock cost of the round (nonzero; ≈ 0 for replays).
        elapsed: std::time::Duration,
        /// How the engine's observation sequence moved (Table 1).
        event: SequenceEvent,
        /// Whether the round replayed a layer a shared explorer had
        /// already computed (for an earlier property or a sibling arm)
        /// instead of exploring it live.
        replayed: bool,
    },
    /// An engine reached a verdict (possibly `Undetermined` — for a
    /// refuter arm or a round-limited run, that just means "out of the
    /// race").
    EngineConcluded {
        /// The engine that concluded.
        engine: EngineUsed,
        /// Its verdict.
        verdict: Verdict,
        /// Rounds it computed.
        rounds: usize,
        /// States it stored.
        states: usize,
    },
    /// An engine died (budget exhaustion, cancellation, deadline).
    /// The session keeps racing the remaining arms.
    EngineFailed {
        /// The engine that failed.
        engine: EngineUsed,
        /// Why.
        error: CubaError,
    },
    /// The session is decided; always the final event of a stream that
    /// produced an outcome (absent when every arm failed hard).
    Verdict {
        /// The session-level outcome.
        outcome: CubaOutcome,
    },
}

impl std::fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionEvent::RoundCompleted {
                engine,
                k,
                states,
                delta_states,
                elapsed,
                event,
                replayed,
            } => {
                let tag = match event {
                    SequenceEvent::Grew => "grew",
                    SequenceEvent::NewPlateau => "new plateau",
                    SequenceEvent::OngoingPlateau => "plateau",
                };
                let mode = if *replayed { ", replayed" } else { "" };
                write!(
                    f,
                    "{engine}: round k={k} done, {states} states (+{delta_states}, {tag}, {elapsed:?}{mode})"
                )
            }
            SessionEvent::EngineConcluded {
                engine,
                verdict,
                rounds,
                ..
            } => {
                write!(f, "{engine}: concluded after {rounds} rounds: {verdict}")
            }
            SessionEvent::EngineFailed { engine, error } => {
                write!(f, "{engine}: failed: {error}")
            }
            SessionEvent::Verdict { outcome } => {
                write!(f, "verdict by {}: {}", outcome.engine, outcome.verdict)
            }
        }
    }
}
