use std::time::{Duration, Instant};

use cuba_explore::{CancelToken, ExploreBudget, SubsumptionMode};
use cuba_pds::Cpds;

use crate::{
    check_fcr, AnalysisSession, CubaError, EngineKind, Property, SessionConfig, SessionEvent,
    Verdict,
};

/// How the driver picks engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverMode {
    /// The paper's overall procedure (§6): if FCR holds, run visible
    /// state reachability and global state reachability concurrently
    /// and return whichever terminates first; otherwise run the
    /// symbolic visible-state analysis.
    #[default]
    Auto,
    /// Force `Alg 3(T(Rk)) ∥ Scheme 1(Rk)` (errors without FCR).
    ExplicitOnly,
    /// Force `Alg 3(T(Sk))` (always applicable).
    SymbolicOnly,
}

/// Which engine produced the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUsed {
    /// Explicit-state `Alg 3(T(Rk))`.
    Alg3Explicit,
    /// Explicit-state `Scheme 1(Rk)`.
    Scheme1Explicit,
    /// Symbolic `Alg 3(T(Sk))`.
    Alg3Symbolic,
    /// Symbolic `Scheme 1(Sk)` (extension).
    Scheme1Symbolic,
    /// The context-bounded baseline refuter (Qadeer–Rehof style).
    CbaBaseline,
}

impl std::fmt::Display for EngineUsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineUsed::Alg3Explicit => write!(f, "Alg3(T(Rk))"),
            EngineUsed::Scheme1Explicit => write!(f, "Scheme1(Rk)"),
            EngineUsed::Alg3Symbolic => write!(f, "Alg3(T(Sk))"),
            EngineUsed::Scheme1Symbolic => write!(f, "Scheme1(Sk)"),
            EngineUsed::CbaBaseline => write!(f, "CBA"),
        }
    }
}

/// Configuration of the [`Cuba`] driver.
#[derive(Debug, Clone)]
pub struct CubaConfig {
    /// Engine selection.
    pub mode: DriverMode,
    /// Exploration budgets.
    pub budget: ExploreBudget,
    /// Round limit per engine.
    pub max_k: usize,
    /// Run the explicit algorithms on real OS threads, as the paper's
    /// procedure forks "two computational threads". When `false`, the
    /// arms advance round-robin on one core through the same bounds,
    /// which is equivalent and cheaper.
    pub parallel: bool,
    /// Subsumption mode for symbolic engines.
    pub subsumption: SubsumptionMode,
    /// Wall-clock limit for the whole run; long rounds abort
    /// cooperatively (the verdict becomes `Undetermined`).
    pub timeout: Option<Duration>,
    /// External cancellation token, if the caller wants to stop the
    /// run from another thread.
    pub cancel: Option<CancelToken>,
}

impl Default for CubaConfig {
    fn default() -> Self {
        CubaConfig {
            mode: DriverMode::Auto,
            budget: ExploreBudget::default(),
            max_k: 64,
            parallel: false,
            subsumption: SubsumptionMode::Exact,
            timeout: None,
            cancel: None,
        }
    }
}

/// Wall-clock split of a run across the analysis stages, summed over
/// completed rounds of all arms. `saturate` *contains* `merge` (the
/// deterministic barrier merges happen inside exploration advances);
/// `check` is the round remainder (membership and convergence tests),
/// so `saturate + check ≈ round_wall`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Time inside exploration advances (`ensure_layer`).
    pub saturate: Duration,
    /// Round time outside exploration: membership and convergence.
    pub check: Duration,
    /// Time inside barrier merges (a subset of `saturate`).
    pub merge: Duration,
}

impl StageTimes {
    /// Component-wise sum (aggregating arms of a race).
    pub fn add(&mut self, other: &StageTimes) {
        self.saturate += other.saturate;
        self.check += other.check;
        self.merge += other.merge;
    }
}

/// Outcome of a [`Cuba`] run.
#[derive(Debug, Clone)]
pub struct CubaOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Whether FCR holds for the input (drives engine choice and is
    /// itself a Table 2 column).
    pub fcr_holds: bool,
    /// The engine that produced the verdict.
    pub engine: EngineUsed,
    /// Number of stored states in the deciding engine.
    pub states: usize,
    /// Rounds computed by the deciding engine.
    pub rounds: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Wall-clock spent inside completed rounds, summed over *all*
    /// arms — the cost-accounting view of the race (scheduling
    /// overhead and FCR/G∩Z precomputation excluded).
    pub round_wall: Duration,
    /// Rounds whose layer was explored *live* by this run, summed over
    /// all arms. With layer sharing ("one system, many properties") a
    /// warm run replays instead of exploring.
    pub rounds_explored: usize,
    /// Rounds replayed from a shared explorer's existing layers.
    pub rounds_replayed: usize,
    /// Per-stage wall-clock split of the completed rounds, summed
    /// over all arms (see [`StageTimes`]).
    pub stages: StageTimes,
}

/// The Cuba verifier: the paper's overall procedure (§6), as a thin
/// compatibility wrapper over [`AnalysisSession`].
///
/// ```text
/// Input: a CPDS Pn and a property C
/// 1: if Pn satisfies FCR then
/// 2:     Alg 3(T(Rk)) ∥ Scheme 1(Rk)      ▷ two threads
/// 3: else
/// 4:     Alg 3(T(Sk))
/// ```
///
/// New code that wants round streaming, cancellation, extra engines
/// (e.g. the CBA refuter arm) or batch verification should use
/// [`AnalysisSession`] / [`Portfolio`](crate::Portfolio) directly.
#[derive(Debug, Clone)]
pub struct Cuba {
    cpds: Cpds,
    property: Property,
}

impl Cuba {
    /// Creates a verifier for the given system and property.
    pub fn new(cpds: Cpds, property: Property) -> Self {
        Cuba { cpds, property }
    }

    /// The system under analysis.
    pub fn cpds(&self) -> &Cpds {
        &self.cpds
    }

    /// The property under analysis.
    pub fn property(&self) -> &Property {
        &self.property
    }

    /// The engine lineup implied by a [`DriverMode`] for this system.
    ///
    /// # Errors
    ///
    /// [`CubaError::FcrRequired`] for `ExplicitOnly` without FCR.
    fn lineup(&self, config: &CubaConfig, fcr: bool) -> Result<Vec<EngineKind>, CubaError> {
        let use_explicit = match config.mode {
            DriverMode::Auto => fcr,
            DriverMode::ExplicitOnly => {
                if !fcr {
                    return Err(CubaError::FcrRequired);
                }
                true
            }
            DriverMode::SymbolicOnly => false,
        };
        Ok(if use_explicit {
            if config.parallel {
                // The literal two-thread race of §6.
                vec![EngineKind::Alg3Explicit, EngineKind::Scheme1Explicit]
            } else {
                // One fused arm: the shared `(Rk)` computation feeds
                // both convergence tests (the Scheme 1 collapse test
                // is folded into Algorithm 3), exactly the classic
                // sequential driver.
                vec![EngineKind::Alg3Explicit]
            }
        } else {
            vec![EngineKind::Alg3Symbolic]
        })
    }

    fn session_config(&self, config: &CubaConfig) -> SessionConfig {
        SessionConfig {
            budget: config.budget.clone(),
            max_k: config.max_k,
            subsumption: config.subsumption,
            timeout: config.timeout,
            cancel: config.cancel.clone(),
            schedule: crate::SchedulePolicy::default(),
        }
    }

    /// Opens a streaming session for this problem under the driver's
    /// engine-selection rules.
    ///
    /// # Errors
    ///
    /// [`CubaError::FcrRequired`] for `ExplicitOnly` without FCR.
    pub fn session(&self, config: &CubaConfig) -> Result<AnalysisSession, CubaError> {
        let fcr = check_fcr(&self.cpds).holds();
        let lineup = self.lineup(config, fcr)?;
        AnalysisSession::new(
            self.cpds.clone(),
            self.property.clone(),
            &lineup,
            &self.session_config(config),
        )
    }

    /// Runs the overall procedure.
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion ([`CubaError::Explore`]); an FCR
    /// mismatch cannot happen in `Auto` mode since the driver picks
    /// engines by the FCR check itself.
    pub fn run(&self, config: &CubaConfig) -> Result<CubaOutcome, CubaError> {
        self.run_with(config, |_| {})
    }

    /// Runs the overall procedure, streaming [`SessionEvent`]s to the
    /// callback (round completions, engine conclusions, the verdict).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with(
        &self,
        config: &CubaConfig,
        mut on_event: impl FnMut(&SessionEvent),
    ) -> Result<CubaOutcome, CubaError> {
        let start = Instant::now();
        let fcr = check_fcr(&self.cpds).holds();
        let lineup = self.lineup(config, fcr)?;
        let session_config = self.session_config(config);
        let mut outcome = if config.parallel && lineup.len() > 1 {
            crate::Portfolio::fixed(lineup)
                .with_config(session_config)
                .run_parallel(
                    self.cpds.clone(),
                    self.property.clone(),
                    Some(&mut on_event),
                )?
        } else {
            AnalysisSession::new(
                self.cpds.clone(),
                self.property.clone(),
                &lineup,
                &session_config,
            )?
            .run_with(on_event)?
        };
        outcome.duration = start.elapsed();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    #[test]
    fn auto_picks_explicit_for_fig1() {
        let cuba = Cuba::new(fig1(), Property::True);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(outcome.fcr_holds);
        assert!(outcome.verdict.is_safe());
        assert!(matches!(
            outcome.engine,
            EngineUsed::Alg3Explicit | EngineUsed::Scheme1Explicit
        ));
    }

    #[test]
    fn auto_picks_symbolic_for_fig2() {
        let cuba = Cuba::new(fig2(), Property::True);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(!outcome.fcr_holds);
        assert!(outcome.verdict.is_safe());
        assert!(matches!(
            outcome.engine,
            EngineUsed::Alg3Symbolic | EngineUsed::Scheme1Symbolic
        ));
    }

    #[test]
    fn parallel_race_agrees_with_fused() {
        let cuba = Cuba::new(fig1(), Property::True);
        let fused = cuba.run(&CubaConfig::default()).unwrap();
        let parallel = cuba
            .run(&CubaConfig {
                parallel: true,
                ..CubaConfig::default()
            })
            .unwrap();
        assert_eq!(fused.verdict.is_safe(), parallel.verdict.is_safe());
    }

    #[test]
    fn explicit_only_rejects_fig2() {
        let cuba = Cuba::new(fig2(), Property::True);
        let err = cuba
            .run(&CubaConfig {
                mode: DriverMode::ExplicitOnly,
                ..CubaConfig::default()
            })
            .unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    #[test]
    fn symbolic_only_works_for_fig1() {
        let cuba = Cuba::new(fig1(), Property::True);
        let outcome = cuba
            .run(&CubaConfig {
                mode: DriverMode::SymbolicOnly,
                ..CubaConfig::default()
            })
            .unwrap();
        assert!(outcome.verdict.is_safe());
    }

    #[test]
    fn unsafe_property_detected_with_bound() {
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let cuba = Cuba::new(fig1(), property);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(matches!(outcome.verdict, Verdict::Unsafe { k: 5, .. }));
    }

    #[test]
    fn outcome_records_duration_and_rounds() {
        let cuba = Cuba::new(fig1(), Property::True);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(outcome.rounds >= 5);
        assert!(outcome.states > 0);
    }

    /// The wrapper streams events: one RoundCompleted per bound from
    /// the fused arm, then the conclusion and the verdict.
    #[test]
    fn run_with_streams_rounds() {
        let cuba = Cuba::new(fig1(), Property::True);
        let mut rounds = Vec::new();
        let mut saw_verdict = false;
        let outcome = cuba
            .run_with(&CubaConfig::default(), |event| match event {
                SessionEvent::RoundCompleted { k, .. } => rounds.push(*k),
                SessionEvent::Verdict { .. } => saw_verdict = true,
                _ => {}
            })
            .unwrap();
        assert!(outcome.verdict.is_safe());
        assert_eq!(rounds, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(saw_verdict);
    }

    /// A driver-level timeout turns the verdict Undetermined instead
    /// of erroring out.
    #[test]
    fn timeout_yields_undetermined() {
        let cuba = Cuba::new(fig2(), Property::True);
        let outcome = cuba
            .run(&CubaConfig {
                timeout: Some(Duration::ZERO),
                ..CubaConfig::default()
            })
            .unwrap();
        match outcome.verdict {
            Verdict::Undetermined { reason } => assert!(reason.contains("deadline")),
            other => panic!("expected Undetermined, got {other:?}"),
        }
    }
}
