use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use cuba_explore::{ExploreBudget, SubsumptionMode};
use cuba_pds::Cpds;

use crate::{
    alg3_explicit, alg3_symbolic, check_fcr, scheme1_explicit, Alg3Config, CubaError, Property,
    Scheme1Config, Verdict,
};

/// How the driver picks engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverMode {
    /// The paper's overall procedure (§6): if FCR holds, run visible
    /// state reachability and global state reachability concurrently
    /// and return whichever terminates first; otherwise run the
    /// symbolic visible-state analysis.
    #[default]
    Auto,
    /// Force `Alg 3(T(Rk)) ∥ Scheme 1(Rk)` (errors without FCR).
    ExplicitOnly,
    /// Force `Alg 3(T(Sk))` (always applicable).
    SymbolicOnly,
}

/// Which engine produced the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUsed {
    /// Explicit-state `Alg 3(T(Rk))`.
    Alg3Explicit,
    /// Explicit-state `Scheme 1(Rk)`.
    Scheme1Explicit,
    /// Symbolic `Alg 3(T(Sk))`.
    Alg3Symbolic,
    /// Symbolic `Scheme 1(Sk)` (extension).
    Scheme1Symbolic,
}

impl std::fmt::Display for EngineUsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineUsed::Alg3Explicit => write!(f, "Alg3(T(Rk))"),
            EngineUsed::Scheme1Explicit => write!(f, "Scheme1(Rk)"),
            EngineUsed::Alg3Symbolic => write!(f, "Alg3(T(Sk))"),
            EngineUsed::Scheme1Symbolic => write!(f, "Scheme1(Sk)"),
        }
    }
}

/// Configuration of the [`Cuba`] driver.
#[derive(Debug, Clone)]
pub struct CubaConfig {
    /// Engine selection.
    pub mode: DriverMode,
    /// Exploration budgets.
    pub budget: ExploreBudget,
    /// Round limit per engine.
    pub max_k: usize,
    /// Run the two explicit algorithms on real threads (crossbeam),
    /// as the paper's procedure forks "two computational threads".
    /// When `false`, the rounds are fused: each round of the shared
    /// `(Rk)` computation feeds both convergence tests, which is
    /// equivalent and cheaper on one core.
    pub parallel: bool,
    /// Subsumption mode for symbolic engines.
    pub subsumption: SubsumptionMode,
}

impl Default for CubaConfig {
    fn default() -> Self {
        CubaConfig {
            mode: DriverMode::Auto,
            budget: ExploreBudget::default(),
            max_k: 64,
            parallel: false,
            subsumption: SubsumptionMode::Exact,
        }
    }
}

/// Outcome of a [`Cuba`] run.
#[derive(Debug, Clone)]
pub struct CubaOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Whether FCR holds for the input (drives engine choice and is
    /// itself a Table 2 column).
    pub fcr_holds: bool,
    /// The engine that produced the verdict.
    pub engine: EngineUsed,
    /// Number of stored states in the deciding engine.
    pub states: usize,
    /// Rounds computed by the deciding engine.
    pub rounds: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

/// The Cuba verifier: the paper's overall procedure (§6).
///
/// ```text
/// Input: a CPDS Pn and a property C
/// 1: if Pn satisfies FCR then
/// 2:     Alg 3(T(Rk)) ∥ Scheme 1(Rk)      ▷ two threads
/// 3: else
/// 4:     Alg 3(T(Sk))
/// ```
#[derive(Debug, Clone)]
pub struct Cuba {
    cpds: Cpds,
    property: Property,
}

impl Cuba {
    /// Creates a verifier for the given system and property.
    pub fn new(cpds: Cpds, property: Property) -> Self {
        Cuba { cpds, property }
    }

    /// The system under analysis.
    pub fn cpds(&self) -> &Cpds {
        &self.cpds
    }

    /// The property under analysis.
    pub fn property(&self) -> &Property {
        &self.property
    }

    /// Runs the overall procedure.
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion ([`CubaError::Explore`]); an FCR
    /// mismatch cannot happen here since the driver picks engines by
    /// the FCR check itself.
    pub fn run(&self, config: &CubaConfig) -> Result<CubaOutcome, CubaError> {
        let start = Instant::now();
        let fcr = check_fcr(&self.cpds);
        let use_explicit = match config.mode {
            DriverMode::Auto => fcr.holds(),
            DriverMode::ExplicitOnly => {
                if !fcr.holds() {
                    return Err(CubaError::FcrRequired);
                }
                true
            }
            DriverMode::SymbolicOnly => false,
        };
        let mut outcome = if use_explicit {
            if config.parallel {
                self.run_explicit_parallel(config, fcr.holds())?
            } else {
                self.run_explicit_fused(config, fcr.holds())?
            }
        } else {
            self.run_symbolic(config, fcr.holds())?
        };
        outcome.duration = start.elapsed();
        Ok(outcome)
    }

    /// Sequential flavor: one shared `(Rk)` computation; each round
    /// feeds both the Scheme 1 collapse test and the Alg. 3 plateau +
    /// generator test. Equivalent to the race on a single core.
    fn run_explicit_fused(&self, config: &CubaConfig, fcr: bool) -> Result<CubaOutcome, CubaError> {
        let alg3_config = Alg3Config {
            budget: config.budget,
            max_k: config.max_k,
            skip_fcr_check: true,
            subsumption: config.subsumption,
            use_state_collapse: true, // fuses Scheme 1's test in
        };
        let report = alg3_explicit(&self.cpds, &self.property, &alg3_config)?;
        let engine = match &report.verdict {
            Verdict::Safe {
                method: crate::ConvergenceMethod::RkCollapse,
                ..
            } => EngineUsed::Scheme1Explicit,
            _ => EngineUsed::Alg3Explicit,
        };
        Ok(CubaOutcome {
            verdict: report.verdict,
            fcr_holds: fcr,
            engine,
            states: report.states,
            rounds: report.rounds,
            duration: Duration::ZERO,
        })
    }

    /// Parallel flavor: Alg 3(T(Rk)) and Scheme 1(Rk) race on separate
    /// OS threads (plus nothing else — the symbolic engine is not
    /// needed under FCR); first conclusive verdict wins.
    fn run_explicit_parallel(
        &self,
        config: &CubaConfig,
        fcr: bool,
    ) -> Result<CubaOutcome, CubaError> {
        let done = AtomicBool::new(false);
        let alg3_config = Alg3Config {
            budget: config.budget,
            max_k: config.max_k,
            skip_fcr_check: true,
            subsumption: config.subsumption,
            use_state_collapse: false, // pure Alg 3 in this arm
        };
        let scheme1_config = Scheme1Config {
            budget: config.budget,
            max_k: config.max_k,
            skip_fcr_check: true,
            subsumption: config.subsumption,
        };

        let result = crossbeam::thread::scope(|scope| {
            let alg3_handle = scope.spawn(|_| {
                let r = run_rounds_with_cancel(&done, || {
                    alg3_explicit(&self.cpds, &self.property, &alg3_config)
                });
                if matches!(&r, Some(Ok(rep)) if !matches!(rep.verdict, Verdict::Undetermined { .. }))
                {
                    done.store(true, Ordering::SeqCst);
                }
                r.map(|res| {
                    res.map(|rep| (EngineUsed::Alg3Explicit, rep.verdict, rep.states, rep.rounds))
                })
            });
            let scheme1_handle = scope.spawn(|_| {
                let r = run_rounds_with_cancel(&done, || {
                    scheme1_explicit(&self.cpds, &self.property, &scheme1_config)
                });
                if matches!(&r, Some(Ok(rep)) if !matches!(rep.verdict, Verdict::Undetermined { .. }))
                {
                    done.store(true, Ordering::SeqCst);
                }
                r.map(|res| {
                    res.map(|rep| {
                        (EngineUsed::Scheme1Explicit, rep.verdict, rep.states, rep.rounds)
                    })
                })
            });
            let a = alg3_handle.join().expect("alg3 thread panicked");
            let b = scheme1_handle.join().expect("scheme1 thread panicked");
            pick_winner(a, b)
        })
        .expect("crossbeam scope panicked");

        let (engine, verdict, states, rounds) = result?;
        Ok(CubaOutcome {
            verdict,
            fcr_holds: fcr,
            engine,
            states,
            rounds,
            duration: Duration::ZERO,
        })
    }

    fn run_symbolic(&self, config: &CubaConfig, fcr: bool) -> Result<CubaOutcome, CubaError> {
        let alg3_config = Alg3Config {
            budget: config.budget,
            max_k: config.max_k,
            skip_fcr_check: true,
            subsumption: config.subsumption,
            use_state_collapse: true,
        };
        let report = alg3_symbolic(&self.cpds, &self.property, &alg3_config)?;
        let engine = match &report.verdict {
            Verdict::Safe {
                method: crate::ConvergenceMethod::SkCollapse,
                ..
            } => EngineUsed::Scheme1Symbolic,
            _ => EngineUsed::Alg3Symbolic,
        };
        Ok(CubaOutcome {
            verdict: report.verdict,
            fcr_holds: fcr,
            engine,
            states: report.states,
            rounds: report.rounds,
            duration: Duration::ZERO,
        })
    }
}

/// Runs `f` unless another arm already finished. The check is
/// best-effort (the algorithms are round-based and fast per round);
/// losing the race after finishing is harmless — verdicts agree.
fn run_rounds_with_cancel<T>(
    done: &AtomicBool,
    f: impl FnOnce() -> Result<T, CubaError>,
) -> Option<Result<T, CubaError>> {
    if done.load(Ordering::SeqCst) {
        return None;
    }
    Some(f())
}

type ArmResult = Option<Result<(EngineUsed, Verdict, usize, usize), CubaError>>;

/// Prefers a conclusive verdict; falls back to whatever is available.
fn pick_winner(
    a: ArmResult,
    b: ArmResult,
) -> Result<(EngineUsed, Verdict, usize, usize), CubaError> {
    let conclusive = |r: &ArmResult| {
        matches!(
            r,
            Some(Ok((_, v, _, _))) if !matches!(v, Verdict::Undetermined { .. })
        )
    };
    if conclusive(&a) {
        return a.expect("checked Some");
    }
    if conclusive(&b) {
        return b.expect("checked Some");
    }
    match (a, b) {
        (Some(ra), _) if ra.is_ok() => ra,
        (_, Some(rb)) => rb,
        (Some(ra), None) => ra,
        (None, None) => unreachable!("at least one arm always runs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    #[test]
    fn auto_picks_explicit_for_fig1() {
        let cuba = Cuba::new(fig1(), Property::True);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(outcome.fcr_holds);
        assert!(outcome.verdict.is_safe());
        assert!(matches!(
            outcome.engine,
            EngineUsed::Alg3Explicit | EngineUsed::Scheme1Explicit
        ));
    }

    #[test]
    fn auto_picks_symbolic_for_fig2() {
        let cuba = Cuba::new(fig2(), Property::True);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(!outcome.fcr_holds);
        assert!(outcome.verdict.is_safe());
        assert!(matches!(
            outcome.engine,
            EngineUsed::Alg3Symbolic | EngineUsed::Scheme1Symbolic
        ));
    }

    #[test]
    fn parallel_race_agrees_with_fused() {
        let cuba = Cuba::new(fig1(), Property::True);
        let fused = cuba.run(&CubaConfig::default()).unwrap();
        let parallel = cuba
            .run(&CubaConfig {
                parallel: true,
                ..CubaConfig::default()
            })
            .unwrap();
        assert_eq!(fused.verdict.is_safe(), parallel.verdict.is_safe());
    }

    #[test]
    fn explicit_only_rejects_fig2() {
        let cuba = Cuba::new(fig2(), Property::True);
        let err = cuba
            .run(&CubaConfig {
                mode: DriverMode::ExplicitOnly,
                ..CubaConfig::default()
            })
            .unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    #[test]
    fn symbolic_only_works_for_fig1() {
        let cuba = Cuba::new(fig1(), Property::True);
        let outcome = cuba
            .run(&CubaConfig {
                mode: DriverMode::SymbolicOnly,
                ..CubaConfig::default()
            })
            .unwrap();
        assert!(outcome.verdict.is_safe());
    }

    #[test]
    fn unsafe_property_detected_with_bound() {
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let cuba = Cuba::new(fig1(), property);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(matches!(outcome.verdict, Verdict::Unsafe { k: 5, .. }));
    }

    #[test]
    fn outcome_records_duration_and_rounds() {
        let cuba = Cuba::new(fig1(), Property::True);
        let outcome = cuba.run(&CubaConfig::default()).unwrap();
        assert!(outcome.rounds >= 5);
        assert!(outcome.states > 0);
    }
}
