//! Suite-level sharing of per-system analysis artifacts.
//!
//! A batch of verification problems often holds *one system, many
//! properties*: every portfolio run then re-decides finite context
//! reachability (§5) and rebuilds the generator intersection `G ∩ Z`
//! (Alg. 2 / Def. 10) for the same CPDS. Both artifacts depend only on
//! the system — never on the property — so
//! [`Portfolio::run_suite`](crate::Portfolio::run_suite) shares them
//! through a [`SuiteCache`]: one [`SystemArtifacts`] per distinct
//! system, keyed by a structural fingerprint, each artifact computed
//! lazily at most once.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cuba_explore::{ExploreBudget, Interrupt, SharedExplorer, SnapshotKind, SubsumptionMode};
use cuba_pds::{Cpds, Rhs, VisibleState};

use crate::{check_fcr, compute_z, FcrReport, GeneratorSet};

/// Lazily computed, property-independent artifacts of one system.
///
/// Shared (via `Arc`) between every session analyzing the same CPDS:
/// the first session to need an artifact computes it, later ones reuse
/// it. Thread-safe — suite workers race on the `OnceLock`s, not on the
/// computation results.
///
/// Besides the FCR verdict and `G ∩ Z`, the artifacts hold the
/// system's **shared explorers** — one per backend — so every engine
/// analyzing the system (across properties, sessions, and threads)
/// consumes *one* layered exploration: the first checker to need a
/// bound pays for it, everyone else replays it
/// ([`SharedExplorer`]).
#[derive(Debug, Default)]
pub struct SystemArtifacts {
    fcr: OnceLock<FcrReport>,
    g_cap_z: OnceLock<Arc<Vec<VisibleState>>>,
    explicit_explorer: OnceLock<Arc<SharedExplorer>>,
    symbolic_exact: OnceLock<Arc<SharedExplorer>>,
    symbolic_pointwise: OnceLock<Arc<SharedExplorer>>,
}

impl SystemArtifacts {
    /// Empty artifacts: everything computed on first use.
    pub fn new() -> Self {
        SystemArtifacts::default()
    }

    /// The FCR report for `cpds`, computed at most once.
    pub fn fcr(&self, cpds: &Cpds) -> &FcrReport {
        self.fcr.get_or_init(|| check_fcr(cpds))
    }

    /// The FCR report, if any session has decided it yet — a read-only
    /// probe for status reporting (never triggers the check).
    pub fn fcr_if_checked(&self) -> Option<&FcrReport> {
        self.fcr.get()
    }

    /// The generator intersection `G ∩ Z` for `cpds` (the convergence
    /// certificate candidates of Algorithm 3), computed at most once.
    pub fn g_cap_z(&self, cpds: &Cpds) -> Arc<Vec<VisibleState>> {
        self.g_cap_z
            .get_or_init(|| {
                let generators = GeneratorSet::from_cpds(cpds);
                let z = compute_z(cpds);
                Arc::new(generators.intersect(z.states.iter()))
            })
            .clone()
    }

    /// The system's shared explicit `(Rk)` explorer, created on first
    /// use with `budget`'s resource caps (the interrupt is stripped —
    /// each caller passes its own per request, so one session's
    /// cancellation never gets baked into the shared exploration).
    /// Later callers share the explorer regardless of their own caps;
    /// suites are expected to run one portfolio configuration.
    pub fn explicit_explorer(&self, cpds: &Cpds, budget: &ExploreBudget) -> Arc<SharedExplorer> {
        self.explicit_explorer
            .get_or_init(|| Arc::new(SharedExplorer::explicit(cpds.clone(), sanitized(budget))))
            .clone()
    }

    /// The system's shared symbolic `(Sk)` explorer for the given
    /// subsumption mode (modes produce different state sequences, so
    /// each gets its own slot). Budget semantics as for
    /// [`explicit_explorer`](Self::explicit_explorer).
    pub fn symbolic_explorer(
        &self,
        cpds: &Cpds,
        budget: &ExploreBudget,
        mode: SubsumptionMode,
    ) -> Arc<SharedExplorer> {
        let slot = match mode {
            SubsumptionMode::Exact => &self.symbolic_exact,
            SubsumptionMode::Pointwise => &self.symbolic_pointwise,
        };
        slot.get_or_init(|| {
            Arc::new(SharedExplorer::symbolic(
                cpds.clone(),
                sanitized(budget),
                mode,
            ))
        })
        .clone()
    }

    /// The explicit explorer, if any engine has created it yet
    /// (instrumentation: layer-sharing tests read its counters).
    pub fn explicit_explorer_if_started(&self) -> Option<Arc<SharedExplorer>> {
        self.explicit_explorer.get().cloned()
    }

    /// The symbolic explorer for `mode`, if started.
    pub fn symbolic_explorer_if_started(
        &self,
        mode: SubsumptionMode,
    ) -> Option<Arc<SharedExplorer>> {
        match mode {
            SubsumptionMode::Exact => self.symbolic_exact.get().cloned(),
            SubsumptionMode::Pointwise => self.symbolic_pointwise.get().cloned(),
        }
    }

    fn slot(&self, kind: SnapshotKind) -> &OnceLock<Arc<SharedExplorer>> {
        match kind {
            SnapshotKind::Explicit => &self.explicit_explorer,
            SnapshotKind::SymbolicExact => &self.symbolic_exact,
            SnapshotKind::SymbolicPointwise => &self.symbolic_pointwise,
        }
    }

    /// The explorer for a snapshot backend kind, if started — what a
    /// [`SnapshotStore`](crate::SnapshotStore) save sweeps over.
    pub fn explorer_if_started(&self, kind: SnapshotKind) -> Option<Arc<SharedExplorer>> {
        self.slot(kind).get().cloned()
    }

    /// Seeds an explorer slot with a restored [`SharedExplorer`]
    /// (snapshot warm-start). Returns `false` when the slot was
    /// already started — a live exploration always wins over a disk
    /// copy, since it can only be deeper or equal.
    pub fn seed_explorer(&self, kind: SnapshotKind, explorer: Arc<SharedExplorer>) -> bool {
        self.slot(kind).set(explorer).is_ok()
    }
}

/// The caps of `budget` with the caller's interrupt wiring removed.
pub(crate) fn sanitized(budget: &ExploreBudget) -> ExploreBudget {
    budget.clone().with_interrupt(Interrupt::none())
}

/// A structural fingerprint of a CPDS: shared-state count, initial
/// state, and per thread the initial stack and the full action list.
/// Two structurally identical systems (however they were built)
/// collide on purpose — that is the cache key.
pub fn fingerprint(cpds: &Cpds) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cpds.num_shared().hash(&mut h);
    cpds.initial_state().q.0.hash(&mut h);
    cpds.num_threads().hash(&mut h);
    for (i, pds) in cpds.threads().iter().enumerate() {
        for sym in cpds.initial_stack(i).iter_top_down() {
            sym.0.hash(&mut h);
        }
        u32::MAX.hash(&mut h); // stack/action separator
        for a in pds.actions() {
            a.q.0.hash(&mut h);
            a.top.map(|s| s.0).hash(&mut h);
            a.q_post.0.hash(&mut h);
            match a.rhs {
                Rhs::Empty => 0u8.hash(&mut h),
                Rhs::One(s) => {
                    1u8.hash(&mut h);
                    s.0.hash(&mut h);
                }
                Rhs::Two { top, below } => {
                    2u8.hash(&mut h);
                    top.0.hash(&mut h);
                    below.0.hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

/// Structural equality of two systems — the confirmation step behind
/// the fingerprint, so a 64-bit hash collision can never hand one
/// system the artifacts (and hence the verdict machinery) of another.
/// Public because service brokers apply the same discipline when
/// reviving spilled systems.
pub fn same_system(a: &Cpds, b: &Cpds) -> bool {
    a.num_shared() == b.num_shared()
        && a.q_init() == b.q_init()
        && a.num_threads() == b.num_threads()
        && (0..a.num_threads()).all(|i| {
            a.initial_stack(i) == b.initial_stack(i)
                && a.thread(i).actions() == b.thread(i).actions()
        })
}

/// A cache of [`SystemArtifacts`] keyed by CPDS fingerprint (with a
/// structural-equality check on hits), shared by the workers of one
/// (or several) [`run_suite`] calls.
///
/// [`run_suite`]: crate::Portfolio::run_suite
/// Systems sharing one fingerprint (almost always exactly one;
/// colliding distinct systems each get their own entry). Entries keep
/// the confirming system behind an `Arc` and the collision probe
/// compares *borrowed* systems field by field, so a lookup — hit or
/// miss probe — never deep-clones a CPDS; only the one retained copy
/// per distinct system is ever made.
type Bucket = Vec<(Arc<Cpds>, Arc<SystemArtifacts>)>;

#[derive(Debug, Default)]
pub struct SuiteCache {
    map: Mutex<HashMap<u64, Bucket>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SuiteCache {
    /// An empty cache.
    pub fn new() -> Self {
        SuiteCache::default()
    }

    /// The artifacts slot for `cpds`, created empty on first sight.
    pub fn artifacts(&self, cpds: &Cpds) -> Arc<SystemArtifacts> {
        self.lookup(cpds).0
    }

    /// As [`artifacts`](Self::artifacts), also reporting whether the
    /// slot already existed (`true` = hit).
    pub fn lookup(&self, cpds: &Cpds) -> (Arc<SystemArtifacts>, bool) {
        let mut span = cuba_telemetry::trace::span("cache-lookup");
        let key = fingerprint(cpds);
        let mut map = self.map.lock().expect("suite cache lock");
        let bucket = map.entry(key).or_default();
        if let Some((_, artifacts)) = bucket.iter().find(|(known, _)| same_system(known, cpds)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cuba_telemetry::metrics::METRICS.cache_hits.inc();
            span.arg("hit", 1u64);
            return (artifacts.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cuba_telemetry::metrics::METRICS.cache_misses.inc();
        span.arg("hit", 0u64);
        let artifacts = Arc::new(SystemArtifacts::new());
        bucket.push((Arc::new(cpds.clone()), artifacts.clone()));
        (artifacts, false)
    }

    /// Distinct systems seen so far.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("suite cache lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether no system has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an existing slot.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that created a fresh slot.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of the cache (the broker-facing
    /// `healthz` numbers).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            systems: self.len(),
            hits: self.hits(),
            misses: self.misses(),
        }
    }

    /// Evicts one system's slot, identified by its fingerprint and
    /// the exact artifacts `Arc` (so a fingerprint collision can never
    /// evict an innocent neighbor). Returns whether a slot was
    /// removed. Holders of the `Arc` keep their artifacts alive and
    /// usable — eviction only stops *new* lookups from sharing them —
    /// which is what lets a long-lived service bound its registry
    /// without invalidating in-flight sessions.
    pub fn remove(&self, fingerprint: u64, artifacts: &Arc<SystemArtifacts>) -> bool {
        let mut map = self.map.lock().expect("suite cache lock");
        let Some(bucket) = map.get_mut(&fingerprint) else {
            return false;
        };
        let before = bucket.len();
        bucket.retain(|(_, a)| !Arc::ptr_eq(a, artifacts));
        let removed = bucket.len() < before;
        if bucket.is_empty() {
            map.remove(&fingerprint);
        }
        removed
    }

    /// Re-inserts a previously evicted system with its still-live
    /// artifacts — the revive half of a service's spill path. If the
    /// system is cached again already, the existing slot wins and is
    /// returned; otherwise the given `Arc` is re-admitted *unchanged*,
    /// so clients still holding it and clients about to look it up
    /// converge on one exploration instead of racing a cold restart.
    /// Counted as neither hit nor miss (the caller already did its own
    /// lookup).
    pub fn adopt(&self, cpds: &Cpds, artifacts: Arc<SystemArtifacts>) -> Arc<SystemArtifacts> {
        let key = fingerprint(cpds);
        let mut map = self.map.lock().expect("suite cache lock");
        let bucket = map.entry(key).or_default();
        if let Some((_, existing)) = bucket.iter().find(|(known, _)| same_system(known, cpds)) {
            return existing.clone();
        }
        bucket.push((Arc::new(cpds.clone()), artifacts.clone()));
        artifacts
    }

    /// A snapshot of every cached system and its artifacts, in
    /// unspecified order — the broker-facing view behind a service's
    /// `/systems` endpoint. Entries are `Arc` clones: cheap, and safe
    /// to inspect while other workers keep analyzing.
    pub fn entries(&self) -> Vec<CacheEntry> {
        let map = self.map.lock().expect("suite cache lock");
        let mut entries: Vec<CacheEntry> = map
            .iter()
            .flat_map(|(&fingerprint, bucket)| {
                bucket.iter().map(move |(system, artifacts)| CacheEntry {
                    fingerprint,
                    system: system.clone(),
                    artifacts: artifacts.clone(),
                })
            })
            .collect();
        entries.sort_by_key(|e| e.fingerprint);
        entries
    }
}

/// Counter snapshot of a [`SuiteCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct systems cached.
    pub systems: usize,
    /// Lookups that found an existing slot.
    pub hits: usize,
    /// Lookups that created a fresh slot.
    pub misses: usize,
}

/// One cached system, as reported by [`SuiteCache::entries`].
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The structural fingerprint the system is keyed by.
    pub fingerprint: u64,
    /// The retained copy of the system.
    pub system: Arc<Cpds>,
    /// Its per-system artifacts (FCR, `G ∩ Z`, shared explorers).
    pub artifacts: Arc<SystemArtifacts>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};

    /// Identical systems share a slot; different systems do not.
    #[test]
    fn fingerprint_distinguishes_systems() {
        assert_eq!(fingerprint(&fig1()), fingerprint(&fig1()));
        assert_ne!(fingerprint(&fig1()), fingerprint(&fig2()));
    }

    /// The FCR report and `G ∩ Z` are computed once per system and
    /// agree with the uncached entry points.
    #[test]
    fn artifacts_match_uncached_results() {
        let cache = SuiteCache::new();
        let cpds = fig1();
        let a1 = cache.artifacts(&cpds);
        let a2 = cache.artifacts(&fig1());
        assert!(Arc::ptr_eq(&a1, &a2), "same system, same slot");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);

        assert_eq!(a1.fcr(&cpds).holds(), check_fcr(&cpds).holds());
        let gz = a1.g_cap_z(&cpds);
        let generators = GeneratorSet::from_cpds(&cpds);
        let z = compute_z(&cpds);
        assert_eq!(*gz, generators.intersect(z.states.iter()));
        // Second call reuses the same Arc.
        assert!(Arc::ptr_eq(&gz, &a1.g_cap_z(&cpds)));

        assert!(!cache.artifacts(&fig2()).fcr(&fig2()).holds());
        assert_eq!(cache.len(), 2);
    }

    /// Eviction removes exactly the named slot: later lookups open a
    /// fresh one, the evicted `Arc` stays usable, and a mismatched
    /// artifacts pointer (collision safety) removes nothing.
    #[test]
    fn remove_evicts_one_slot() {
        let cache = SuiteCache::new();
        let a1 = cache.artifacts(&fig1());
        let _ = cache.artifacts(&fig2());
        let key = fingerprint(&fig1());

        assert!(!cache.remove(key, &Arc::new(SystemArtifacts::new())));
        assert_eq!(cache.len(), 2, "wrong Arc evicts nothing");
        assert!(cache.remove(key, &a1));
        assert!(!cache.remove(key, &a1), "second removal is a no-op");
        assert_eq!(cache.len(), 1, "only fig1's slot went away");

        // The evicted artifacts still work; new lookups get a fresh slot.
        assert!(a1.fcr(&fig1()).holds());
        let a1_again = cache.artifacts(&fig1());
        assert!(!Arc::ptr_eq(&a1, &a1_again));
        assert_eq!(cache.len(), 2);
    }

    /// `adopt` re-admits an evicted system's live artifacts, so clients
    /// holding the old `Arc` and fresh lookups converge again — and if
    /// a new slot opened in the meantime, the new slot wins.
    #[test]
    fn adopt_restores_arc_sharing() {
        let cache = SuiteCache::new();
        let a1 = cache.artifacts(&fig1());
        assert!(cache.remove(fingerprint(&fig1()), &a1));

        let revived = cache.adopt(&fig1(), a1.clone());
        assert!(Arc::ptr_eq(&revived, &a1), "adopt re-admits the live Arc");
        assert!(
            Arc::ptr_eq(&cache.artifacts(&fig1()), &a1),
            "lookups after adopt see the revived slot"
        );
        let (hits, misses) = (cache.hits(), cache.misses());

        // If the system was re-cached already, the existing slot wins.
        assert!(cache.remove(fingerprint(&fig1()), &a1));
        let fresh = cache.artifacts(&fig1());
        let adopted = cache.adopt(&fig1(), a1.clone());
        assert!(Arc::ptr_eq(&adopted, &fresh), "existing slot wins");
        assert_eq!(cache.len(), 1, "no duplicate slot for one system");
        // Only the fresh lookup moved the counters: adopt itself
        // counts neither hits nor misses.
        assert_eq!(cache.hits(), hits);
        assert_eq!(cache.misses(), misses + 1);
    }

    /// `entries()` snapshots every cached system with its fingerprint
    /// and artifacts; `stats()` mirrors the counters.
    #[test]
    fn entries_snapshot_the_cache() {
        let cache = SuiteCache::new();
        assert!(cache.entries().is_empty());
        let a1 = cache.artifacts(&fig1());
        let _ = cache.artifacts(&fig2());
        let _ = cache.artifacts(&fig1());

        let entries = cache.entries();
        assert_eq!(entries.len(), 2);
        let fig1_entry = entries
            .iter()
            .find(|e| e.fingerprint == fingerprint(&fig1()))
            .expect("fig1 cached");
        assert!(Arc::ptr_eq(&fig1_entry.artifacts, &a1));
        assert!(same_system(&fig1_entry.system, &fig1()));
        assert_eq!(
            cache.stats(),
            CacheStats {
                systems: 2,
                hits: 1,
                misses: 2
            }
        );
    }

    /// A hit requires structural equality, not just a matching
    /// fingerprint: colliding distinct systems get distinct slots (the
    /// bucket is a list), so a 64-bit collision can never leak one
    /// system's verdict machinery to another.
    #[test]
    fn hits_require_structural_equality() {
        assert!(same_system(&fig1(), &fig1()));
        assert!(!same_system(&fig1(), &fig2()));

        // Simulate a fingerprint collision: seed fig2's entry into the
        // bucket fig1 will hash to. The fig1 lookup must reject it by
        // structural comparison and open a fresh slot.
        let cache = SuiteCache::new();
        let foreign = Arc::new(SystemArtifacts::new());
        cache
            .map
            .lock()
            .unwrap()
            .entry(fingerprint(&fig1()))
            .or_default()
            .push((Arc::new(fig2()), foreign.clone()));
        let a = cache.artifacts(&fig1());
        assert!(
            !Arc::ptr_eq(&a, &foreign),
            "a colliding system must not share artifacts"
        );
        assert_eq!(cache.len(), 2);
        // A repeat lookup of fig1 hits its own slot.
        assert!(Arc::ptr_eq(&a, &cache.artifacts(&fig1())));
        assert!(a.fcr(&fig1()).holds());
    }
}
