use std::collections::BTreeSet;

use cuba_pds::{Cpds, SharedState, StackSym, VisibleState};

/// The syntactic generator set `G` of Eq. 2 (Thm. 11).
///
/// A visible state `⟨q|σ1,…,σn⟩` is a *generator* if for some thread
/// `i`, `(q,ε)` is the target of a pop edge in `Δi` and `σi` is either
/// `ε` or a symbol that some push of `Δi` writes directly underneath
/// the pushed symbol (an *emerging symbol*). Intuition: after a
/// plateau of `(T(Rk))`, the first genuinely new visible state must
/// have been produced by a pop — pushes and overwrites are determined
/// by the visible state alone and would have fired one plateau
/// earlier (the contradiction in the proof of Thm. 11).
///
/// `G` leaves threads `j ≠ i` unconstrained, so the set is huge; it is
/// kept as a predicate and only ever *intersected* with the finite
/// overapproximation `Z` ([`compute_z`](crate::compute_z)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorSet {
    /// Per thread: shared states that pop edges can move to.
    pop_targets: Vec<BTreeSet<SharedState>>,
    /// Per thread: the emerging symbols `E` of Alg. 2.
    emerging: Vec<BTreeSet<StackSym>>,
}

impl GeneratorSet {
    /// Computes the generator predicate for a CPDS — purely syntactic,
    /// one pass over each thread's program.
    pub fn from_cpds(cpds: &Cpds) -> Self {
        let mut pop_targets = Vec::with_capacity(cpds.num_threads());
        let mut emerging = Vec::with_capacity(cpds.num_threads());
        for pds in cpds.threads() {
            pop_targets.push(pds.pop_targets().into_iter().collect());
            emerging.push(pds.emerging_symbols().into_iter().collect());
        }
        GeneratorSet {
            pop_targets,
            emerging,
        }
    }

    /// Whether `v ∈ G` per Eq. 2.
    pub fn contains(&self, v: &VisibleState) -> bool {
        v.tops.iter().enumerate().any(|(i, top)| {
            self.pop_targets[i].contains(&v.q)
                && match top {
                    None => true,
                    Some(sym) => self.emerging[i].contains(sym),
                }
        })
    }

    /// The intersection `G ∩ Z`, the finite set the Alg. 3 convergence
    /// test compares against `T(Rk)`.
    pub fn intersect<'a, I>(&self, z: I) -> Vec<VisibleState>
    where
        I: IntoIterator<Item = &'a VisibleState>,
    {
        let mut out: Vec<VisibleState> = z
            .into_iter()
            .filter(|v| self.contains(v))
            .cloned()
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Per-thread pop-target sets (diagnostics).
    pub fn pop_targets(&self, thread: usize) -> impl Iterator<Item = SharedState> + '_ {
        self.pop_targets[thread].iter().copied()
    }

    /// Per-thread emerging-symbol sets (diagnostics).
    pub fn emerging_symbols(&self, thread: usize) -> impl Iterator<Item = StackSym> + '_ {
        self.emerging[thread].iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }
    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(q(qq), tops.iter().map(|t| t.map(StackSym)).collect())
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    /// Ex. 14: G for Fig. 1 contains exactly the visible states with
    /// q = 0 and thread 2's top ∈ {ε, 6} (thread 1 unconstrained).
    #[test]
    fn fig1_generator_predicate() {
        let g = GeneratorSet::from_cpds(&fig1());
        assert!(g.contains(&vis(0, &[Some(1), None])));
        assert!(g.contains(&vis(0, &[Some(1), Some(6)])));
        assert!(g.contains(&vis(0, &[Some(2), None])));
        assert!(g.contains(&vis(0, &[Some(2), Some(6)])));
        // ε for thread 1 is allowed by Eq. 2 (unconstrained):
        assert!(g.contains(&vis(0, &[None, Some(6)])));
        // Wrong shared state or non-emerging top:
        assert!(!g.contains(&vis(1, &[Some(1), Some(6)])));
        assert!(!g.contains(&vis(0, &[Some(1), Some(4)])));
        assert!(!g.contains(&vis(0, &[Some(1), Some(5)])));
    }

    /// Ex. 14's intersection with the Fig. 3 Z set.
    #[test]
    fn fig1_g_cap_z() {
        let g = GeneratorSet::from_cpds(&fig1());
        let z = [
            vis(0, &[Some(1), Some(4)]),
            vis(1, &[Some(2), Some(4)]),
            vis(2, &[Some(2), Some(5)]),
            vis(3, &[Some(2), Some(4)]),
            vis(0, &[Some(1), None]),
            vis(1, &[Some(2), None]),
            vis(0, &[Some(1), Some(6)]),
            vis(1, &[Some(2), Some(6)]),
        ];
        let gz = g.intersect(z.iter());
        assert_eq!(
            gz,
            vec![vis(0, &[Some(1), None]), vis(0, &[Some(1), Some(6)])]
        );
    }

    #[test]
    fn thread_without_pops_contributes_nothing() {
        let g = GeneratorSet::from_cpds(&fig1());
        // Thread 1 (index 0) has no pop edges:
        assert_eq!(g.pop_targets(0).count(), 0);
        assert_eq!(g.pop_targets(1).collect::<Vec<_>>(), vec![q(0)]);
        assert_eq!(g.emerging_symbols(1).collect::<Vec<_>>(), vec![s(6)]);
    }

    #[test]
    fn upward_closure_sanity() {
        // Generator-ness only depends on (q, σi) for a popping thread;
        // flipping another thread's top keeps membership.
        let g = GeneratorSet::from_cpds(&fig1());
        let base = vis(0, &[Some(1), Some(6)]);
        let flipped = vis(0, &[Some(2), Some(6)]);
        assert_eq!(g.contains(&base), g.contains(&flipped));
    }
}
