//! A persistent fingerprint → [`FrontierConfig`] profile map — the
//! autotune store behind `--profile-map`.
//!
//! `cuba tune` emits one global profile scored over the whole suite;
//! this module learns one per *structural CPDS fingerprint* instead,
//! online: the first analysis of a novel fingerprint runs a cheap
//! tuning probe (see `cuba_bench::tune`), the winner is cached here
//! with its provenance, and every later session on the same system
//! starts with the learned schedule — including the saturation
//! `threads` count — without re-probing. The map serializes to a
//! versioned, line-oriented text format in the same family as
//! [`FrontierConfig::to_profile`], so learned tunings survive process
//! restarts and can be shipped between machines.
//!
//! Collision discipline mirrors [`SuiteCache`](crate::SuiteCache):
//! entries are bucketed by 64-bit fingerprint, each in-process entry
//! retains the `Arc<Cpds>` that confirmed it, and lookups re-check
//! structural equality so a hash collision can never hand one system
//! the tuning of another. Entries loaded from disk carry only the
//! fingerprint; the first structurally distinct system to claim one
//! binds it, and any collider after that probes afresh.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cuba_pds::Cpds;

use crate::cache::{fingerprint, same_system};
use crate::schedule::FrontierConfig;

/// The (only) profile-map format version this build reads and writes.
pub const PROFILE_MAP_VERSION: u32 = 1;

/// Provenance of a learned profile: what the probe measured when it
/// picked the config, so `merge` can prefer better-scored knowledge
/// and operators can audit a map file.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    /// Primary probe score: total scheduler rounds (live + replayed)
    /// the winning config needed over the probed properties.
    pub rounds: f64,
    /// Tie-break probe score: wall-clock microseconds over the same.
    pub wall_us: f64,
    /// Samples per candidate the probe averaged over.
    pub samples: usize,
    /// The context-switch bound cap (`max_k`) the probe ran under.
    pub tuned_at_k: usize,
}

impl ProbeRecord {
    /// Lexicographic probe score — fewer rounds first, wall breaks
    /// ties. Lower is better.
    pub fn score(&self) -> (f64, f64) {
        (self.rounds, self.wall_us)
    }
}

/// One learned tuning: the config a probe picked plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedProfile {
    /// The winning schedule, `threads` included. Its probe verdicts
    /// matched the default config's — the tune adoption invariant —
    /// or it *is* the default config.
    pub config: FrontierConfig,
    /// What the probe measured when it adopted `config`.
    pub probe: ProbeRecord,
}

/// One bucket slot. `system` is the retained copy that confirmed the
/// entry (learned in-process or claimed after a disk load); `None`
/// marks a disk-loaded entry no system has claimed yet.
#[derive(Debug)]
struct MapEntry {
    system: Option<Arc<Cpds>>,
    profile: LearnedProfile,
}

/// Counters a [`ProfileMap`] keeps, surfaced by `GET /systems`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileMapStats {
    /// Learned entries currently in the map.
    pub entries: usize,
    /// Lookups that found a (structurally confirmed) profile.
    pub hits: usize,
    /// Lookups that found nothing for the fingerprint.
    pub misses: usize,
    /// Probes started through [`ProfileMap::try_begin_probe`].
    pub probes_started: usize,
    /// Probes whose winner was recorded via [`ProfileMap::learn`].
    pub probes_learned: usize,
}

/// Thread-safe fingerprint → [`FrontierConfig`] store with
/// lookup/learn/merge/save and a probe-deduplication gate, shared by
/// `cuba verify/bench/serve --profile-map`.
#[derive(Debug, Default)]
pub struct ProfileMap {
    entries: Mutex<HashMap<u64, Vec<MapEntry>>>,
    /// Fingerprints with a probe in flight — the gate that makes
    /// concurrent clients on one fingerprint trigger exactly one probe.
    probing: Mutex<HashSet<u64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    probes_started: AtomicUsize,
    probes_learned: AtomicUsize,
}

/// Releases a fingerprint's probe slot on drop, so a failed or
/// abandoned probe does not wedge the fingerprint forever.
#[derive(Debug)]
pub struct ProbeGuard<'a> {
    map: &'a ProfileMap,
    fingerprint: u64,
}

impl Drop for ProbeGuard<'_> {
    fn drop(&mut self) {
        self.map
            .probing
            .lock()
            .expect("profile-map probe set poisoned")
            .remove(&self.fingerprint);
    }
}

impl ProfileMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("profile map poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True if nothing has been learned or loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the learned config for `cpds`, confirming structural
    /// identity against the entry's retained system. A disk-loaded
    /// (unclaimed) entry under the right fingerprint is claimed by the
    /// first system to look it up and confirmed structurally from then
    /// on. Counts a hit or miss either way.
    pub fn lookup(&self, cpds: &Cpds) -> Option<FrontierConfig> {
        self.lookup_profile(cpds).map(|profile| profile.config)
    }

    /// [`lookup`](Self::lookup), but returning the provenance too.
    pub fn lookup_profile(&self, cpds: &Cpds) -> Option<LearnedProfile> {
        let fp = fingerprint(cpds);
        let mut entries = self.entries.lock().expect("profile map poisoned");
        let found = entries.get_mut(&fp).and_then(|bucket| {
            // Prefer a structurally confirmed entry; otherwise claim
            // the first unclaimed disk entry for this system.
            if let Some(entry) = bucket.iter().find(|e| {
                e.system
                    .as_deref()
                    .is_some_and(|known| same_system(known, cpds))
            }) {
                return Some(entry.profile.clone());
            }
            bucket.iter_mut().find(|e| e.system.is_none()).map(|entry| {
                entry.system = Some(Arc::new(cpds.clone()));
                entry.profile.clone()
            })
        });
        drop(entries);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cuba_telemetry::metrics::METRICS.profile_hits.inc();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cuba_telemetry::metrics::METRICS.profile_misses.inc();
            }
        };
        found
    }

    /// Reads an entry by raw fingerprint without claiming or counting
    /// — the `GET /systems` view. With colliding entries (vanishingly
    /// rare) the first is returned.
    pub fn peek(&self, fingerprint: u64) -> Option<LearnedProfile> {
        self.entries
            .lock()
            .expect("profile map poisoned")
            .get(&fingerprint)
            .and_then(|bucket| bucket.first())
            .map(|entry| entry.profile.clone())
    }

    /// Records the probe winner for `cpds`, replacing any entry the
    /// same system (or an unclaimed disk entry under its fingerprint)
    /// already holds. The caller is responsible for the adoption
    /// invariant: `profile.config` must have produced verdicts
    /// identical to the default config's on the probe, or be the
    /// default itself — `tune::sweep` guarantees this for its winner.
    pub fn learn(&self, cpds: &Cpds, profile: LearnedProfile) {
        let fp = fingerprint(cpds);
        let mut entries = self.entries.lock().expect("profile map poisoned");
        let bucket = entries.entry(fp).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| match &e.system {
            Some(known) => same_system(known, cpds),
            None => true,
        }) {
            if entry.system.is_none() {
                entry.system = Some(Arc::new(cpds.clone()));
            }
            entry.profile = profile;
        } else {
            bucket.push(MapEntry {
                system: Some(Arc::new(cpds.clone())),
                profile,
            });
        }
        drop(entries);
        self.probes_learned.fetch_add(1, Ordering::Relaxed);
    }

    /// Claims the probe slot for `fingerprint`. Returns `None` while
    /// another thread holds it — callers then proceed with their
    /// fallback schedule instead of probing a second time. The slot is
    /// released when the returned guard drops.
    pub fn try_begin_probe(&self, fingerprint: u64) -> Option<ProbeGuard<'_>> {
        let mut probing = self.probing.lock().expect("profile-map probe set poisoned");
        if !probing.insert(fingerprint) {
            return None;
        }
        drop(probing);
        self.probes_started.fetch_add(1, Ordering::Relaxed);
        cuba_telemetry::metrics::METRICS.probes.inc();
        Some(ProbeGuard {
            map: self,
            fingerprint,
        })
    }

    /// Folds another map's entries into this one: fingerprints absent
    /// here are adopted wholesale; where both sides know a fingerprint,
    /// the better probe score (fewer rounds, wall as tie-break) wins,
    /// ties keeping the incumbent. Matching is per bucket slot, by
    /// structural identity where both systems are retained.
    pub fn merge(&self, other: ProfileMap) {
        let incoming = other.entries.into_inner().expect("profile map poisoned");
        let mut entries = self.entries.lock().expect("profile map poisoned");
        for (fp, bucket) in incoming {
            let slot = entries.entry(fp).or_default();
            for new in bucket {
                let existing = slot.iter_mut().find(|e| match (&e.system, &new.system) {
                    (Some(a), Some(b)) => same_system(a, b),
                    _ => true,
                });
                match existing {
                    Some(entry) => {
                        if new.profile.probe.score() < entry.profile.probe.score() {
                            *entry = new;
                        }
                    }
                    None => slot.push(new),
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProfileMapStats {
        ProfileMapStats {
            entries: self.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            probes_started: self.probes_started.load(Ordering::Relaxed),
            probes_learned: self.probes_learned.load(Ordering::Relaxed),
        }
    }

    /// Serializes the map in the versioned text format
    /// [`parse`](Self::parse) reads. Blocks are emitted in fingerprint
    /// order so saving is deterministic. Should a bucket ever hold
    /// colliding distinct systems, only its first entry is written —
    /// the format keys blocks by fingerprint alone, so a second block
    /// would be unparseable; the collider simply re-probes next time.
    pub fn to_text(&self) -> String {
        let entries = self.entries.lock().expect("profile map poisoned");
        let ordered: BTreeMap<u64, &MapEntry> = entries
            .iter()
            .filter_map(|(fp, bucket)| bucket.first().map(|entry| (*fp, entry)))
            .collect();
        let mut out = String::new();
        out.push_str(
            "# cuba frontier-schedule profile map\n\
             # load with: cuba verify --profile-map <this file>\n",
        );
        out.push_str(&format!("version = {PROFILE_MAP_VERSION}\n"));
        for (fp, entry) in ordered {
            let config = &entry.profile.config;
            let probe = &entry.profile.probe;
            out.push('\n');
            out.push_str(&format!(
                "fingerprint = {fp}\n\
                 window = {}\n\
                 bonus_turns = {}\n\
                 max_lead = {}\n\
                 balloon_ratio = {}\n\
                 park_floor = {}\n\
                 park_after = {}\n\
                 threads = {}\n\
                 probe_rounds = {}\n\
                 probe_wall_us = {}\n\
                 probe_samples = {}\n\
                 tuned_at_k = {}\n",
                config.window,
                config.bonus_turns,
                config.max_lead,
                config.balloon_ratio,
                config.park_floor,
                config.park_after,
                config.threads,
                probe.rounds,
                probe.wall_us,
                probe.samples,
                probe.tuned_at_k,
            ));
        }
        out
    }

    /// Parses the text format [`to_text`](Self::to_text) writes: an
    /// optional `version = 1` header, then `fingerprint = <u64>`
    /// blocks of `key = value` lines — the [`FrontierConfig`] profile
    /// keys plus the `probe_*`/`tuned_at_k` provenance. `#` comments
    /// and blank lines are ignored anywhere.
    ///
    /// # Errors
    ///
    /// A message naming the offending line number — unknown versions,
    /// unknown keys, malformed or duplicate blocks — never echoing
    /// file content.
    pub fn parse(text: &str) -> Result<Self, String> {
        struct Block {
            fingerprint: u64,
            config: FrontierConfig,
            probe: ProbeRecord,
        }
        fn flush(
            block: Option<Block>,
            entries: &mut HashMap<u64, Vec<MapEntry>>,
        ) -> Result<(), String> {
            let Some(block) = block else { return Ok(()) };
            block.config.validate()?;
            entries.insert(
                block.fingerprint,
                vec![MapEntry {
                    system: None,
                    profile: LearnedProfile {
                        config: block.config,
                        probe: block.probe,
                    },
                }],
            );
            Ok(())
        }

        let mut entries: HashMap<u64, Vec<MapEntry>> = HashMap::new();
        let mut block: Option<Block> = None;
        for (index, line) in text.lines().enumerate() {
            let at = |message: String| format!("profile map line {}: {message}", index + 1);
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(at("expected `key = value`".to_owned()));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => {
                    let version: u32 = value
                        .parse()
                        .map_err(|_| at("bad value for 'version'".to_owned()))?;
                    if version != PROFILE_MAP_VERSION {
                        return Err(at(format!(
                            "unsupported profile map version (this build reads version {PROFILE_MAP_VERSION})"
                        )));
                    }
                }
                "fingerprint" => {
                    flush(block.take(), &mut entries).map_err(&at)?;
                    let fp: u64 = value
                        .parse()
                        .map_err(|_| at("bad value for 'fingerprint'".to_owned()))?;
                    if entries.contains_key(&fp) {
                        return Err(at("duplicate fingerprint".to_owned()));
                    }
                    block = Some(Block {
                        fingerprint: fp,
                        config: FrontierConfig::default(),
                        probe: ProbeRecord {
                            rounds: 0.0,
                            wall_us: 0.0,
                            samples: 0,
                            tuned_at_k: 0,
                        },
                    });
                }
                _ => {
                    let Some(current) = block.as_mut() else {
                        return Err(at("key before the first `fingerprint` block".to_owned()));
                    };
                    fn parse_num<T: std::str::FromStr>(
                        key: &str,
                        value: &str,
                    ) -> Result<T, String> {
                        value.parse().map_err(|_| format!("bad value for '{key}'"))
                    }
                    match key {
                        "probe_rounds" => {
                            current.probe.rounds = parse_num(key, value).map_err(&at)?;
                        }
                        "probe_wall_us" => {
                            current.probe.wall_us = parse_num(key, value).map_err(&at)?;
                        }
                        "probe_samples" => {
                            current.probe.samples = parse_num(key, value).map_err(&at)?;
                        }
                        "tuned_at_k" => {
                            current.probe.tuned_at_k = parse_num(key, value).map_err(&at)?;
                        }
                        _ => current.config.set_field(key, value).map_err(&at)?,
                    }
                }
            }
        }
        flush(block.take(), &mut entries)
            .map_err(|message| format!("profile map line {}: {message}", text.lines().count()))?;
        Ok(ProfileMap {
            entries: Mutex::new(entries),
            ..ProfileMap::default()
        })
    }

    /// Reads and parses a map file.
    ///
    /// # Errors
    ///
    /// The I/O error or parse error, prefixed with the path.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Writes the map to `path` in the versioned text format.
    ///
    /// # Errors
    ///
    /// The I/O error, prefixed with the path.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_text()).map_err(|e| format!("{path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};

    fn learned(window: usize, rounds: f64) -> LearnedProfile {
        LearnedProfile {
            config: FrontierConfig {
                window,
                threads: 1,
                ..FrontierConfig::default()
            },
            probe: ProbeRecord {
                rounds,
                wall_us: 10.5,
                samples: 1,
                tuned_at_k: 32,
            },
        }
    }

    #[test]
    fn map_round_trips_through_text() {
        let map = ProfileMap::new();
        map.learn(&fig1(), learned(4, 12.0));
        map.learn(&fig2(), learned(2, 7.0));
        let text = map.to_text();
        assert!(text.starts_with("# cuba frontier-schedule profile map"));
        assert!(text.contains("version = 1"));

        let reloaded = ProfileMap::parse(&text).expect("round trip");
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup_profile(&fig1()), Some(learned(4, 12.0)));
        assert_eq!(reloaded.lookup_profile(&fig2()), Some(learned(2, 7.0)));
        // Deterministic serialization: a second save is byte-identical.
        assert_eq!(reloaded.to_text(), text);
    }

    #[test]
    fn parse_rejects_corrupt_input() {
        for (bad, needle) in [
            (
                "version = 1\nnot a key value line\n",
                "expected `key = value`",
            ),
            (
                "version = 1\nwindow = 3\n",
                "before the first `fingerprint`",
            ),
            (
                "version = 1\nfingerprint = abc\n",
                "bad value for 'fingerprint'",
            ),
            (
                "version = 1\nfingerprint = 1\nwombat = 3\n",
                "unknown tuning key",
            ),
            (
                "version = 1\nfingerprint = 1\nwindow = many\n",
                "bad value for 'window'",
            ),
            (
                "version = 1\nfingerprint = 1\nwindow = 0\n",
                "window must be at least 1",
            ),
            (
                "version = 1\nfingerprint = 1\n\nfingerprint = 1\n",
                "duplicate fingerprint",
            ),
            (
                "version = 1\nfingerprint = 1\nprobe_rounds = soon\n",
                "bad value for 'probe_rounds'",
            ),
        ] {
            let err = ProfileMap::parse(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?} -> {err}");
            assert!(err.contains("profile map line"), "{err}");
        }
    }

    #[test]
    fn parse_rejects_unknown_versions() {
        let err = ProfileMap::parse("version = 2\n").expect_err("future version");
        assert!(err.contains("unsupported profile map version"), "{err}");
        // A versionless map still parses (the header is optional).
        assert!(ProfileMap::parse("fingerprint = 7\nwindow = 4\n").is_ok());
    }

    #[test]
    fn lookup_confirms_structural_identity() {
        let map = ProfileMap::new();
        map.learn(&fig1(), learned(4, 12.0));
        assert_eq!(map.lookup(&fig1()).map(|c| c.window), Some(4));
        assert_eq!(map.lookup(&fig2()), None);
        let stats = map.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.probes_learned, 1);
    }

    #[test]
    fn disk_entries_are_claimed_once() {
        let map = ProfileMap::new();
        map.learn(&fig1(), learned(4, 12.0));
        let reloaded = ProfileMap::parse(&map.to_text()).expect("parse");
        // fig2 hashes differently, so it cannot claim fig1's block.
        assert_eq!(reloaded.lookup(&fig2()), None);
        // fig1 claims its block; the claim then survives as a
        // structurally confirmed entry.
        assert!(reloaded.lookup(&fig1()).is_some());
        assert!(reloaded.lookup(&fig1()).is_some());
        assert_eq!(reloaded.len(), 1);
    }

    #[test]
    fn learn_replaces_and_merge_prefers_better_scores() {
        let map = ProfileMap::new();
        map.learn(&fig1(), learned(4, 12.0));
        map.learn(&fig1(), learned(5, 9.0));
        assert_eq!(map.len(), 1);
        assert_eq!(map.lookup(&fig1()).map(|c| c.window), Some(5));

        // Worse incoming score: incumbent kept.
        let worse = ProfileMap::new();
        worse.learn(&fig1(), learned(2, 30.0));
        map.merge(worse);
        assert_eq!(map.lookup(&fig1()).map(|c| c.window), Some(5));

        // Better incoming score and a novel fingerprint: both adopted.
        let better = ProfileMap::new();
        better.learn(&fig1(), learned(3, 5.0));
        better.learn(&fig2(), learned(2, 7.0));
        map.merge(better);
        assert_eq!(map.lookup(&fig1()).map(|c| c.window), Some(3));
        assert_eq!(map.lookup(&fig2()).map(|c| c.window), Some(2));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn probe_slot_is_exclusive_until_released() {
        let map = ProfileMap::new();
        let guard = map.try_begin_probe(42).expect("first claim");
        assert!(map.try_begin_probe(42).is_none());
        assert!(map.try_begin_probe(43).is_some());
        drop(guard);
        assert!(map.try_begin_probe(42).is_some());
        assert_eq!(map.stats().probes_started, 3);
    }
}
