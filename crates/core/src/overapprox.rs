use std::collections::{HashSet, VecDeque};

use cuba_pds::{Cpds, Pds, Rhs, ThreadVisible, VisibleState};

/// A transition of the context-insensitive finite-state abstraction
/// `M` (Alg. 2): `(q,σ) ↦ (q',σ')` over thread-visible states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbstractTransition {
    /// Source thread-visible state.
    pub from: ThreadVisible,
    /// Target thread-visible state.
    pub to: ThreadVisible,
}

impl std::fmt::Display for AbstractTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} |-> {}", self.from, self.to)
    }
}

/// Builds thread `i`'s finite-state abstraction `Mi` (paper Alg. 2):
/// the stack is cut off at size 1; each action becomes a transition on
/// `(q, T(w'))`, and each pop action additionally guesses every
/// *emerging symbol* (any `ρ1` written under a push) as well as `ε`.
pub fn thread_abstraction(pds: &Pds) -> Vec<AbstractTransition> {
    // Lines 2–3: collect emerging symbols E.
    let emerging = pds.emerging_symbols();
    let mut out: Vec<AbstractTransition> = Vec::new();
    let mut seen: HashSet<AbstractTransition> = HashSet::new();
    let mut push = |t: AbstractTransition, out: &mut Vec<AbstractTransition>| {
        if seen.insert(t) {
            out.push(t);
        }
    };
    for a in pds.actions() {
        let from = ThreadVisible { q: a.q, top: a.top };
        // Line 6: the action itself, with the stack cut at one symbol.
        let to_top = match a.rhs {
            Rhs::Empty => None,
            Rhs::One(s) => Some(s),
            Rhs::Two { top, .. } => Some(top),
        };
        push(
            AbstractTransition {
                from,
                to: ThreadVisible {
                    q: a.q_post,
                    top: to_top,
                },
            },
            &mut out,
        );
        // Lines 7–9: pops context-insensitively guess what emerges.
        if a.rhs.is_empty() && a.top.is_some() {
            for &rho in &emerging {
                push(
                    AbstractTransition {
                        from,
                        to: ThreadVisible {
                            q: a.q_post,
                            top: Some(rho),
                        },
                    },
                    &mut out,
                );
            }
        }
    }
    out
}

/// The result of the `Z` computation (Lemma 12: `T(R) ⊆ Z`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZReport {
    /// The reachable visible states of the abstraction `Mn`.
    pub states: HashSet<VisibleState>,
    /// Per thread, the abstraction's transitions (for diagnostics and
    /// the Fig. 3 reproduction).
    pub abstractions: Vec<Vec<AbstractTransition>>,
}

/// Computes the context-insensitive overapproximation
/// `Z ⊇ T(R)` (paper §4.1.3): builds `Mi` for each thread with
/// [`thread_abstraction`] and explores the asynchronous product `Mn`
/// exhaustively from `T(initial state)`.
///
/// The tighter this set, the weaker the Alg. 3 line-4 test and the
/// better the odds of termination.
pub fn compute_z(cpds: &Cpds) -> ZReport {
    let abstractions: Vec<Vec<AbstractTransition>> =
        cpds.threads().iter().map(thread_abstraction).collect();

    let start = cpds.initial_state().visible();
    let mut states: HashSet<VisibleState> = HashSet::new();
    states.insert(start.clone());
    let mut queue: VecDeque<VisibleState> = VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for (i, trans) in abstractions.iter().enumerate() {
            let tv = v.thread_visible(i);
            for t in trans {
                if t.from == tv {
                    let mut next = v.clone();
                    next.q = t.to.q;
                    next.tops[i] = t.to.top;
                    if !states.contains(&next) {
                        states.insert(next.clone());
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    ZReport {
        states,
        abstractions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }
    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(q(qq), tops.iter().map(|t| t.map(StackSym)).collect())
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    /// Fig. 3 top: the abstractions T1 and T2 of the Fig. 1 threads.
    #[test]
    fn fig3_thread_abstractions() {
        let cpds = fig1();
        let t1 = thread_abstraction(cpds.thread(0));
        // e1: (0,1) ↦ (1,2); e2: (3,2) ↦ (0,1)
        assert_eq!(t1.len(), 2);
        let t2 = thread_abstraction(cpds.thread(1));
        // f1: (0,4) ↦ (0,ε); f2: (0,4) ↦ (0,6); f3: (1,4) ↦ (2,5);
        // f4: (2,5) ↦ (3,4)
        let strings: HashSet<String> = t2.iter().map(|t| t.to_string()).collect();
        assert_eq!(
            strings,
            HashSet::from([
                "(0,4) |-> (0,eps)".to_owned(),
                "(0,4) |-> (0,6)".to_owned(),
                "(1,4) |-> (2,5)".to_owned(),
                "(2,5) |-> (3,4)".to_owned(),
            ])
        );
    }

    /// Fig. 3 bottom / Ex. 13: the 8-state set Z.
    #[test]
    fn fig3_z_set() {
        let z = compute_z(&fig1());
        let expected: HashSet<VisibleState> = [
            vis(0, &[Some(1), Some(4)]),
            vis(1, &[Some(2), Some(4)]),
            vis(2, &[Some(2), Some(5)]),
            vis(3, &[Some(2), Some(4)]),
            vis(0, &[Some(1), None]),
            vis(1, &[Some(2), None]),
            vis(0, &[Some(1), Some(6)]),
            vis(1, &[Some(2), Some(6)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(z.states, expected);
    }

    /// Lemma 12 on Fig. 1: every reachable visible state is in Z.
    #[test]
    fn z_overapproximates_visible_reachability() {
        let cpds = fig1();
        let z = compute_z(&cpds);
        let mut engine =
            cuba_explore::ExplicitEngine::new(cpds, cuba_explore::ExploreBudget::default());
        for _ in 0..8 {
            engine.advance().unwrap();
        }
        for v in engine.visible_total() {
            assert!(z.states.contains(v), "Z misses reachable visible {v}");
        }
    }

    #[test]
    fn pop_guesses_every_emerging_symbol() {
        // Two pushes with distinct below-symbols, one pop.
        let mut b = PdsBuilder::new(2, 4);
        b.push(q(0), s(0), q(0), s(1), s(2)).unwrap();
        b.push(q(0), s(1), q(0), s(0), s(3)).unwrap();
        b.pop(q(1), s(0), q(1)).unwrap();
        let pds = b.build().unwrap();
        let trans = thread_abstraction(&pds);
        let pops: Vec<&AbstractTransition> = trans
            .iter()
            .filter(|t| {
                t.from
                    == ThreadVisible {
                        q: q(1),
                        top: Some(s(0)),
                    }
            })
            .collect();
        // ε + the two emerging symbols {2, 3}.
        assert_eq!(pops.len(), 3);
        let tops: HashSet<Option<StackSym>> = pops.iter().map(|t| t.to.top).collect();
        assert_eq!(tops, HashSet::from([None, Some(s(2)), Some(s(3))]));
    }

    #[test]
    fn empty_stack_actions_abstracted() {
        let mut b = PdsBuilder::new(2, 1);
        b.from_empty(q(0), q(1), Some(s(0))).unwrap();
        b.from_empty(q(1), q(0), None).unwrap();
        let pds = b.build().unwrap();
        let trans = thread_abstraction(&pds);
        let strings: HashSet<String> = trans.iter().map(|t| t.to_string()).collect();
        assert_eq!(
            strings,
            HashSet::from([
                "(0,eps) |-> (1,0)".to_owned(),
                "(1,eps) |-> (0,eps)".to_owned(),
            ])
        );
    }
}
