use cuba_explore::{ExploreBudget, SubsumptionMode, SymbolicEngine};
use cuba_pds::Cpds;

use crate::engine::{Applicability, Engine, RoundCtx, RoundInfo, RoundOutcome};
use crate::{CubaError, EngineUsed, GrowthLog, Property, Verdict};

/// Configuration of the context-bounded baseline.
#[derive(Debug, Clone)]
pub struct CbaConfig {
    /// The fixed context bound `k` to explore to.
    pub k: usize,
    /// Exploration budgets.
    pub budget: ExploreBudget,
}

impl CbaConfig {
    /// Baseline run up to bound `k` with default budgets.
    pub fn up_to(k: usize) -> Self {
        CbaConfig {
            k,
            budget: ExploreBudget::default(),
        }
    }
}

/// What the baseline can conclude — note the asymmetry: it can refute
/// but never prove (the paper's central criticism of plain CBA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbaVerdict {
    /// A violation exists within `k` contexts.
    BugFound {
        /// The bound at which the bug appeared.
        k: usize,
    },
    /// No violation within the explored bound — **not** a proof.
    NoBugUpTo {
        /// The explored bound.
        k: usize,
    },
}

/// Report of a baseline run.
#[derive(Debug, Clone)]
pub struct CbaReport {
    /// The (one-sided) verdict.
    pub verdict: CbaVerdict,
    /// Symbolic states stored.
    pub states: usize,
    /// Visible states seen.
    pub visible: usize,
}

/// Plain context-bounded analysis in the style of Qadeer–Rehof (the
/// algorithm JMoped builds on) as a resumable round-stepper: explore
/// `S0 … Sk` symbolically for a *fixed* bound `k`, checking the
/// property on the way, with no convergence detection whatsoever.
///
/// As a portfolio arm this is the cheap *refuter* of the §6 race: it
/// can win with `Unsafe`, and "concludes" `Undetermined` once the
/// bound is exhausted — CBA proves nothing (Fig. 5's comparator).
#[derive(Debug)]
pub struct CbaEngine {
    cpds: Cpds,
    property: Property,
    budget: ExploreBudget,
    bound: usize,
    backend: SymbolicEngine,
    growth: GrowthLog,
    next_k: usize,
    /// Symbolic states after the previous round, for `delta_states`.
    prev_states: usize,
    verdict: Option<Verdict>,
}

impl CbaEngine {
    /// A baseline engine exploring up to `config.k` contexts.
    pub fn new(cpds: &Cpds, property: &Property, config: &CbaConfig) -> Self {
        CbaEngine {
            cpds: cpds.clone(),
            property: property.clone(),
            budget: config.budget.clone(),
            bound: config.k,
            backend: SymbolicEngine::new(
                cpds.clone(),
                config.budget.clone(),
                SubsumptionMode::Exact,
            ),
            growth: GrowthLog::new(),
            next_k: 0,
            prev_states: 0,
            verdict: None,
        }
    }

    fn conclude(&mut self, round: Option<RoundInfo>, verdict: Verdict) -> RoundOutcome {
        self.verdict = Some(verdict.clone());
        RoundOutcome::Concluded { round, verdict }
    }

    /// The system under analysis.
    pub fn cpds(&self) -> &Cpds {
        &self.cpds
    }

    /// Visible states seen so far.
    pub fn num_visible(&self) -> usize {
        self.backend.num_visible()
    }

    /// Consumes the engine into the classic report. An engine that
    /// did not run to conclusion reports `NoBugUpTo` only for the
    /// rounds it actually explored — never for the configured bound.
    pub fn into_report(self) -> CbaReport {
        let explored = self.rounds();
        let verdict = match &self.verdict {
            Some(Verdict::Unsafe { k, .. }) => CbaVerdict::BugFound { k: *k },
            _ => CbaVerdict::NoBugUpTo { k: explored },
        };
        CbaReport {
            verdict,
            states: self.backend.num_symbolic_states(),
            visible: self.backend.num_visible(),
        }
    }
}

impl Engine for CbaEngine {
    fn id(&self) -> EngineUsed {
        EngineUsed::CbaBaseline
    }

    fn applicability(&self, _cpds: &Cpds) -> Applicability {
        Applicability::Applicable
    }

    fn step(&mut self, ctx: &mut RoundCtx) -> Result<RoundOutcome, CubaError> {
        if let Some(verdict) = &self.verdict {
            return Ok(RoundOutcome::Concluded {
                round: None,
                verdict: verdict.clone(),
            });
        }
        ctx.interrupt.check().map_err(CubaError::Explore)?;
        if self.next_k > self.bound {
            let verdict = Verdict::Undetermined {
                reason: format!(
                    "no violation within {} contexts (context-bounded analysis cannot prove safety)",
                    self.bound
                ),
            };
            return Ok(self.conclude(None, verdict));
        }
        let started = std::time::Instant::now();
        let k = self.next_k;
        if k > 0 {
            self.backend.advance()?;
        }
        let event = self.growth.push(self.backend.num_symbolic_states());
        self.next_k += 1;
        let states = self.backend.num_symbolic_states();
        let info = RoundInfo {
            k,
            states,
            delta_states: states.saturating_sub(self.prev_states),
            elapsed: started.elapsed().max(std::time::Duration::from_nanos(1)),
            event,
            // The refuter owns its exploration; nothing is replayed.
            replayed: false,
        };
        self.prev_states = states;
        if self
            .property
            .find_violation(self.backend.visible_layer(k).iter())
            .is_some()
        {
            let verdict = crate::alg3::attach_symbolic_witness(
                Verdict::Unsafe { k, witness: None },
                &self.cpds,
                &self.property,
                &self.budget,
            );
            return Ok(self.conclude(Some(info), verdict));
        }
        Ok(RoundOutcome::Continue(info))
    }

    fn rounds(&self) -> usize {
        self.next_k.saturating_sub(1).min(self.bound)
    }

    fn states(&self) -> usize {
        self.backend.num_symbolic_states()
    }

    fn growth(&self) -> &GrowthLog {
        &self.growth
    }

    fn verdict(&self) -> Option<&Verdict> {
        self.verdict.as_ref()
    }
}

/// Plain context-bounded analysis for a fixed bound (the Fig. 5
/// comparator; run it "with the same context bound at which Cuba
/// terminates", as the paper's evaluation does). Delegates to
/// [`CbaEngine`].
///
/// # Errors
///
/// Returns a budget error when the symbolic state set explodes.
pub fn cba_baseline(
    cpds: &Cpds,
    property: &Property,
    config: &CbaConfig,
) -> Result<CbaReport, CubaError> {
    let mut engine = CbaEngine::new(cpds, property, config);
    let mut ctx = RoundCtx::new();
    loop {
        if let RoundOutcome::Concluded { .. } = engine.step(&mut ctx)? {
            return Ok(engine.into_report());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1;
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    #[test]
    fn finds_bug_at_right_bound() {
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(8)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::BugFound { k: 5 });
    }

    #[test]
    fn cannot_prove_safety() {
        // Unreachable target: the baseline only reports NoBugUpTo.
        let property = Property::never_visible(vis(2, &[Some(1), Some(5)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(6)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::NoBugUpTo { k: 6 });
    }

    #[test]
    fn misses_bug_beyond_bound() {
        // The ⟨1|2,6⟩ bug needs k = 5; a bound of 3 misses it — the
        // "slips through" failure mode of CBA the paper fixes.
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(3)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::NoBugUpTo { k: 3 });
    }

    #[test]
    fn initial_state_bug() {
        let property = Property::never_visible(vis(0, &[Some(1), Some(4)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(2)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::BugFound { k: 0 });
    }

    /// As an engine, the baseline's exhaustion is `Undetermined`: a
    /// portfolio never lets plain CBA claim safety.
    #[test]
    fn engine_exhaustion_is_undetermined() {
        let property = Property::never_visible(vis(2, &[Some(1), Some(5)]));
        let mut engine = CbaEngine::new(&fig1(), &property, &CbaConfig::up_to(3));
        let mut ctx = RoundCtx::new();
        let verdict = loop {
            if let RoundOutcome::Concluded { verdict, .. } = engine.step(&mut ctx).unwrap() {
                break verdict;
            }
        };
        assert!(matches!(verdict, Verdict::Undetermined { .. }));
        // And as a refuter it attaches a witness when it wins.
        let buggy = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let mut engine = CbaEngine::new(&fig1(), &buggy, &CbaConfig::up_to(8));
        let verdict = loop {
            if let RoundOutcome::Concluded { verdict, .. } = engine.step(&mut ctx).unwrap() {
                break verdict;
            }
        };
        match verdict {
            Verdict::Unsafe { k: 5, witness } => {
                let w = witness.expect("refuter reconstructs a path");
                assert!(w.replay(engine.cpds()));
            }
            other => panic!("expected Unsafe at 5, got {other:?}"),
        }
    }
}
