use cuba_explore::{ExploreBudget, SubsumptionMode, SymbolicEngine};
use cuba_pds::Cpds;

use crate::{CubaError, Property};

/// Configuration of the context-bounded baseline.
#[derive(Debug, Clone)]
pub struct CbaConfig {
    /// The fixed context bound `k` to explore to.
    pub k: usize,
    /// Exploration budgets.
    pub budget: ExploreBudget,
}

impl CbaConfig {
    /// Baseline run up to bound `k` with default budgets.
    pub fn up_to(k: usize) -> Self {
        CbaConfig {
            k,
            budget: ExploreBudget::default(),
        }
    }
}

/// What the baseline can conclude — note the asymmetry: it can refute
/// but never prove (the paper's central criticism of plain CBA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbaVerdict {
    /// A violation exists within `k` contexts.
    BugFound {
        /// The bound at which the bug appeared.
        k: usize,
    },
    /// No violation within the explored bound — **not** a proof.
    NoBugUpTo {
        /// The explored bound.
        k: usize,
    },
}

/// Report of a baseline run.
#[derive(Debug, Clone)]
pub struct CbaReport {
    /// The (one-sided) verdict.
    pub verdict: CbaVerdict,
    /// Symbolic states stored.
    pub states: usize,
    /// Visible states seen.
    pub visible: usize,
}

/// Plain context-bounded analysis in the style of Qadeer–Rehof (the
/// algorithm JMoped builds on): explore `S0 … Sk` symbolically for a
/// *fixed* bound `k`, checking the property on the way, with no
/// convergence detection whatsoever. This is the Fig. 5 comparator;
/// run it "with the same context bound at which Cuba terminates", as
/// the paper's evaluation does.
///
/// # Errors
///
/// Returns a budget error when the symbolic state set explodes.
pub fn cba_baseline(
    cpds: &Cpds,
    property: &Property,
    config: &CbaConfig,
) -> Result<CbaReport, CubaError> {
    let mut engine = SymbolicEngine::new(cpds.clone(), config.budget, SubsumptionMode::Exact);
    if property
        .find_violation(engine.visible_layer(0).iter())
        .is_some()
    {
        return Ok(CbaReport {
            verdict: CbaVerdict::BugFound { k: 0 },
            states: engine.num_symbolic_states(),
            visible: engine.num_visible(),
        });
    }
    for k in 1..=config.k {
        engine.advance()?;
        if property
            .find_violation(engine.visible_layer(k).iter())
            .is_some()
        {
            return Ok(CbaReport {
                verdict: CbaVerdict::BugFound { k },
                states: engine.num_symbolic_states(),
                visible: engine.num_visible(),
            });
        }
    }
    Ok(CbaReport {
        verdict: CbaVerdict::NoBugUpTo { k: config.k },
        states: engine.num_symbolic_states(),
        visible: engine.num_visible(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1;
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    #[test]
    fn finds_bug_at_right_bound() {
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(8)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::BugFound { k: 5 });
    }

    #[test]
    fn cannot_prove_safety() {
        // Unreachable target: the baseline only reports NoBugUpTo.
        let property = Property::never_visible(vis(2, &[Some(1), Some(5)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(6)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::NoBugUpTo { k: 6 });
    }

    #[test]
    fn misses_bug_beyond_bound() {
        // The ⟨1|2,6⟩ bug needs k = 5; a bound of 3 misses it — the
        // "slips through" failure mode of CBA the paper fixes.
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(3)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::NoBugUpTo { k: 3 });
    }

    #[test]
    fn initial_state_bug() {
        let property = Property::never_visible(vis(0, &[Some(1), Some(4)]));
        let report = cba_baseline(&fig1(), &property, &CbaConfig::up_to(2)).unwrap();
        assert_eq!(report.verdict, CbaVerdict::BugFound { k: 0 });
    }
}
