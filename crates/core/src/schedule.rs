//! Budget-aware arm scheduling for [`AnalysisSession`]s.
//!
//! The paper's §6 race advances every arm through the same bounds in
//! lockstep, which is wasteful in both directions: an arm whose
//! observation sequence is about to plateau (the likely winner) waits
//! for its siblings, while an arm whose symbolic state count balloons
//! burns most of the wall-clock without ever getting closer to a
//! verdict. With per-round cost accounting in
//! [`RoundInfo`](crate::RoundInfo) (`elapsed`, `delta_states`) the
//! scheduler can see both situations and act:
//!
//! * [`SchedulePolicy::RoundRobin`] — the original lockstep behavior.
//! * [`SchedulePolicy::FrontierAware`] (the default) — grants extra
//!   consecutive turns to the most promising arm (plateauing
//!   observation sequence first, then smallest `delta_states/elapsed`
//!   trend), demotes an arm whose stored states balloon past a
//!   configurable ratio of the leanest sibling, and eventually parks
//!   it. Parking is never fatal: a parked arm is resumed as soon as
//!   every other arm has retired, so no verdict reachable under
//!   round-robin is lost.
//!
//! The policy is pluggable behind the [`Scheduler`] trait: sessions
//! build a boxed scheduler from the policy in their
//! [`SessionConfig`](crate::SessionConfig) and consult it before every
//! step.
//!
//! [`AnalysisSession`]: crate::AnalysisSession

use crate::RoundInfo;

/// What a [`Scheduler`] is allowed to know about an arm when picking
/// the next one to step.
#[derive(Debug, Clone, Copy)]
pub struct ArmView {
    /// The arm concluded or failed; it must not be scheduled again.
    pub retired: bool,
    /// States stored at the arm's current bound.
    pub states: usize,
    /// Rounds the arm has computed.
    pub rounds: usize,
    /// Whether the arm is a refuter (CBA): it can win with a bug but
    /// never proves, so a plateau never lets it conclude — granting it
    /// bonus turns on a safe instance only delays the provers.
    pub refuter: bool,
    /// Identity of the arm's shared exploration store, when it borrows
    /// one ([`SharedExplorer`](cuba_explore::SharedExplorer)). Arms
    /// sharing a store replay each other's layers for free, which
    /// changes what scheduling can save: stepping a laggard costs
    /// ≈ nothing, racing a leader ahead costs live exploration.
    pub store: Option<usize>,
    /// Deepest bound the arm's store already holds: the arm's next
    /// step is a free replay iff `rounds < frontier`.
    pub frontier: usize,
}

/// An arm-picking strategy for a session's race.
///
/// The session calls [`next_arm`](Scheduler::next_arm) before every
/// step and [`record`](Scheduler::record) after every completed round,
/// so implementations see the full per-round cost stream.
pub trait Scheduler: Send {
    /// Picks the index of the next arm to step, or `None` when no
    /// schedulable arm remains (every arm retired). Implementations
    /// must never return a retired arm and must keep every non-retired
    /// arm reachable (no permanent starvation), or verdicts reachable
    /// under round-robin would be lost.
    fn next_arm(&mut self, arms: &[ArmView]) -> Option<usize>;

    /// Records a completed round of arm `index`.
    fn record(&mut self, index: usize, info: &RoundInfo);

    /// Whether the arm is currently parked (diagnostics only).
    fn is_parked(&self, index: usize) -> bool {
        let _ = index;
        false
    }
}

/// Tuning of the [`FrontierAware`](SchedulePolicy::FrontierAware)
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierConfig {
    /// How many recent rounds feed the per-arm trend.
    pub window: usize,
    /// Extra consecutive turns per cycle for the leading arm.
    pub bonus_turns: usize,
    /// How many rounds the leader may run ahead of the most-behind
    /// active arm before its bonus is withheld (bounds the damage of a
    /// mispicked leader).
    pub max_lead: usize,
    /// An arm is ballooning when its stored states exceed this ratio
    /// of the leanest active sibling's (and [`Self::park_floor`]).
    pub balloon_ratio: f64,
    /// Ballooning is ignored below this absolute state count.
    pub park_floor: usize,
    /// Consecutive ballooning evaluations before the arm is parked
    /// outright (before that it is demoted to every other cycle).
    pub park_after: usize,
    /// Saturation worker threads per context step (`0` = inherit the
    /// session budget's setting, which itself defaults to the
    /// machine's available parallelism; `1` = sequential). Tunable
    /// because the profitable shard count depends on the workload's
    /// saturation sizes, not on the schedule — but co-tuning it with
    /// the scheduler knobs lets `cuba tune` find the joint optimum.
    pub threads: usize,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            window: 3,
            bonus_turns: 3,
            max_lead: 6,
            balloon_ratio: 8.0,
            park_floor: 256,
            park_after: 2,
            threads: 0,
        }
    }
}

/// A [`FrontierConfig`] with the name it was saved under — the unit
/// `cuba tune` emits and `--schedule frontier:<profile>` loads.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedProfile {
    /// Profile name (one token, no whitespace).
    pub name: String,
    /// The tuning it carries.
    pub config: FrontierConfig,
}

impl FrontierConfig {
    /// Serializes the config as a named profile file: `# `-comments,
    /// one `key = value` line per field. [`parse_profile`] is the
    /// exact inverse.
    ///
    /// [`parse_profile`]: Self::parse_profile
    pub fn to_profile(&self, name: &str) -> String {
        format!(
            "# cuba frontier-schedule profile\n\
             # load with: cuba verify --schedule frontier:<this file>\n\
             name = {name}\n\
             window = {}\n\
             bonus_turns = {}\n\
             max_lead = {}\n\
             balloon_ratio = {}\n\
             park_floor = {}\n\
             park_after = {}\n\
             threads = {}\n",
            self.window,
            self.bonus_turns,
            self.max_lead,
            self.balloon_ratio,
            self.park_floor,
            self.park_after,
            self.threads,
        )
    }

    /// Parses a profile file written by [`to_profile`](Self::to_profile):
    /// `key = value` lines over the defaults, `#` comments and blank
    /// lines ignored. Unknown keys and malformed lines are errors
    /// (they would silently mis-tune the scheduler otherwise); the
    /// `name` line is optional and defaults to `"unnamed"`. A
    /// `version` header is accepted for forward compatibility with the
    /// versioned profile-map format — version 1 (and versionless
    /// pre-map files) load, anything newer is rejected.
    ///
    /// # Errors
    ///
    /// A message naming the offending line number — never echoing file
    /// content, so a mistaken path cannot leak into error output.
    pub fn parse_profile(text: &str) -> Result<NamedProfile, String> {
        let mut name = "unnamed".to_owned();
        let mut config = FrontierConfig::default();
        for (index, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "profile line {}: expected `key = value`",
                    index + 1
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "version" {
                if value != "1" {
                    return Err(format!(
                        "profile line {}: unsupported profile version (this build reads version 1)",
                        index + 1
                    ));
                }
            } else if key == "name" {
                if value.is_empty() || value.chars().any(char::is_whitespace) {
                    return Err(format!(
                        "profile line {}: name must be one non-empty token",
                        index + 1
                    ));
                }
                name = value.to_owned();
            } else {
                config
                    .set_field(key, value)
                    .map_err(|message| format!("profile line {}: {message}", index + 1))?;
            }
        }
        config.validate()?;
        Ok(NamedProfile { name, config })
    }

    /// Parses an inline tuning spec — `key=value` pairs separated by
    /// commas, over the defaults — the `--schedule
    /// frontier:window=4,bonus_turns=2` form that needs no file.
    ///
    /// # Errors
    ///
    /// Unknown keys, unparsable values, or out-of-range fields.
    pub fn parse_inline(spec: &str) -> Result<FrontierConfig, String> {
        let mut config = FrontierConfig::default();
        for pair in spec.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!("bad tuning pair '{pair}': expected key=value"));
            };
            config.set_field(key.trim(), value.trim())?;
        }
        config.validate()?;
        Ok(config)
    }

    /// Sets one field by its profile key. Shared with the profile-map
    /// parser, which reuses the exact key set per fingerprint block.
    pub(crate) fn set_field(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value.parse().map_err(|_| format!("bad value for '{key}'"))
        }
        match key {
            "window" => self.window = parse(key, value)?,
            "bonus_turns" => self.bonus_turns = parse(key, value)?,
            "max_lead" => self.max_lead = parse(key, value)?,
            "balloon_ratio" => self.balloon_ratio = parse(key, value)?,
            "park_floor" => self.park_floor = parse(key, value)?,
            "park_after" => self.park_after = parse(key, value)?,
            "threads" => self.threads = parse(key, value)?,
            other => return Err(format!("unknown tuning key '{other}'")),
        }
        Ok(())
    }

    /// Checks the invariants the scheduler depends on.
    ///
    /// # Errors
    ///
    /// A message naming the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be at least 1".to_owned());
        }
        if self.max_lead == 0 {
            return Err("max_lead must be at least 1".to_owned());
        }
        if self.balloon_ratio <= 1.0 || self.balloon_ratio.is_nan() {
            return Err("balloon_ratio must exceed 1".to_owned());
        }
        if self.park_after == 0 {
            return Err("park_after must be at least 1".to_owned());
        }
        Ok(())
    }
}

/// How a session distributes turns over its racing arms.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulePolicy {
    /// The paper's lockstep: every active arm advances through the
    /// same bounds in lineup order.
    RoundRobin,
    /// Cost-aware scheduling: bonus turns for the most promising arm,
    /// demotion/parking for ballooning ones. The default.
    FrontierAware(FrontierConfig),
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::FrontierAware(FrontierConfig::default())
    }
}

impl SchedulePolicy {
    /// The frontier-aware policy with default tuning.
    pub fn frontier_aware() -> Self {
        SchedulePolicy::default()
    }

    /// Instantiates the scheduler implementing this policy.
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulePolicy::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulePolicy::FrontierAware(config) => {
                Box::new(FrontierAwareScheduler::new(config.clone()))
            }
        }
    }

    /// The CLI spelling of the policy (`--schedule <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round-robin",
            SchedulePolicy::FrontierAware(_) => "frontier",
        }
    }

    /// Parses a schedule spec — the grammar shared by the CLI
    /// `--schedule` flag and the serve API's per-request `schedule=`
    /// parameter:
    ///
    /// * `round-robin` — the paper's lockstep.
    /// * `frontier` — frontier-aware with default tuning.
    /// * `frontier:<k=v,...>` — frontier-aware with inline tuning
    ///   (any pair containing `=` is treated as inline).
    /// * `frontier:<profile>` — frontier-aware with a named profile,
    ///   resolved by `resolve` (a file loader on the CLI, a
    ///   preloaded-profile lookup in the serve API — the caller
    ///   decides whether and where disk is touched).
    ///
    /// # Errors
    ///
    /// Unknown policy names, malformed inline tunings, and whatever
    /// `resolve` reports for an unknown profile.
    pub fn parse_spec(
        spec: &str,
        resolve: &dyn Fn(&str) -> Result<FrontierConfig, String>,
    ) -> Result<SchedulePolicy, String> {
        match spec {
            "round-robin" => Ok(SchedulePolicy::RoundRobin),
            "frontier" => Ok(SchedulePolicy::frontier_aware()),
            _ => match spec.strip_prefix("frontier:") {
                Some(arg) if arg.contains('=') => Ok(SchedulePolicy::FrontierAware(
                    FrontierConfig::parse_inline(arg)?,
                )),
                Some("") => Err("empty frontier profile name".to_owned()),
                Some(arg) => Ok(SchedulePolicy::FrontierAware(resolve(arg)?)),
                None => Err(format!(
                    "bad schedule '{spec}' (expected round-robin, frontier, \
                     frontier:<profile>, or frontier:<key=value,...>)"
                )),
            },
        }
    }

    /// [`parse_spec`](Self::parse_spec) with profiles resolved as
    /// filesystem paths — the CLI behavior of `--schedule
    /// frontier:<file>`.
    ///
    /// # Errors
    ///
    /// As for [`parse_spec`](Self::parse_spec); unreadable files
    /// report the path and the I/O error.
    pub fn parse_spec_with_files(spec: &str) -> Result<SchedulePolicy, String> {
        SchedulePolicy::parse_spec(spec, &|path| {
            let text = std::fs::read_to_string(path)
                .map_err(|error| format!("cannot read profile {path}: {error}"))?;
            Ok(FrontierConfig::parse_profile(&text)?.config)
        })
    }
}

impl std::fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The original lockstep scheduler: next non-retired arm after the
/// cursor, wrapping.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// A fresh scheduler starting at the first arm.
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next_arm(&mut self, arms: &[ArmView]) -> Option<usize> {
        let n = arms.len();
        let pick = (0..n)
            .map(|offset| (self.cursor + offset) % n)
            .find(|&i| !arms[i].retired)?;
        self.cursor = pick + 1;
        Some(pick)
    }

    fn record(&mut self, _index: usize, _info: &RoundInfo) {}
}

/// Per-arm bookkeeping of the frontier-aware scheduler.
#[derive(Debug, Default, Clone)]
struct ArmStats {
    /// Recent `(delta_states, elapsed_secs)` of *live* rounds, newest
    /// last, capped at `config.window`. Replayed rounds never enter:
    /// their ≈ 0 cost and zero delta would fake a perfect trend.
    recent: Vec<(usize, f64)>,
    /// Whether the latest recorded round observed a plateau. Sequence
    /// information is valid for replays too — a replayed plateau is
    /// the same plateau a live round would have seen — so this updates
    /// on every round; only the *cost* samples are live-only.
    last_plateaued: bool,
    /// Consecutive cycles the arm was seen ballooning.
    strikes: usize,
    /// The arm is parked: no turns while any sibling is active.
    parked: bool,
}

impl ArmStats {
    /// `delta_states` per second over the window; `None` until the
    /// window is full (no bonus before there is evidence).
    fn trend(&self, window: usize) -> Option<f64> {
        if self.recent.len() < window {
            return None;
        }
        let states: usize = self.recent.iter().map(|r| r.0).sum();
        let secs: f64 = self.recent.iter().map(|r| r.1).sum();
        Some(states as f64 / secs.max(1e-12))
    }

    /// Whether the latest recorded round was a plateau.
    fn plateaued(&self) -> bool {
        self.last_plateaued
    }
}

/// The budget-aware scheduler: weighted cycles with a leader bonus and
/// balloon demotion/parking. Deterministic given the recorded round
/// stream (modulo wall-clock jitter in the trend tie-breaks, which the
/// plateau priority and the index tie-break keep from mattering on
/// close calls).
#[derive(Debug)]
pub struct FrontierAwareScheduler {
    config: FrontierConfig,
    stats: Vec<ArmStats>,
    /// Planned turns for the current cycle, next turn last (popped).
    plan: Vec<usize>,
    /// Cycles planned so far (demoted arms run every other cycle).
    cycles: usize,
}

impl FrontierAwareScheduler {
    /// A fresh scheduler with the given tuning.
    pub fn new(config: FrontierConfig) -> Self {
        FrontierAwareScheduler {
            config,
            stats: Vec::new(),
            plan: Vec::new(),
            cycles: 0,
        }
    }

    fn ensure_stats(&mut self, n: usize) {
        if self.stats.len() < n {
            self.stats.resize(n, ArmStats::default());
        }
    }

    /// Re-evaluates ballooning and plans the next cycle of turns.
    fn plan_cycle(&mut self, arms: &[ArmView]) {
        self.cycles += 1;
        let active: Vec<usize> = (0..arms.len()).filter(|&i| !arms[i].retired).collect();
        if active.is_empty() {
            return;
        }

        // Balloon evaluation against the leanest active sibling, at
        // *store* granularity: arms sharing an exploration store hold
        // the same states at different cursors, so comparing them to
        // each other would flag the deeper sibling as "ballooning" for
        // merely being ahead. Each arm is judged by its store's
        // deepest state count instead (its own, when unshared).
        let effective = |i: usize| -> usize {
            match arms[i].store {
                None => arms[i].states,
                Some(store) => active
                    .iter()
                    .filter(|&&j| arms[j].store == Some(store))
                    .map(|&j| arms[j].states)
                    .max()
                    .unwrap_or(arms[i].states),
            }
        };
        // Provers are judged against other *provers* only: a lean
        // refuter (CBA explores tiny per-bound slices) must not get
        // the provers demoted — it can win with a bug but can never
        // conclude safety, so throttling provers in its favor turns a
        // safe instance into a crawl through the refuter's bound
        // budget. Refuters balloon against anyone.
        let min_over = |refuters_too: bool| {
            active
                .iter()
                .filter(|&&i| refuters_too || !arms[i].refuter)
                .map(|&i| effective(i))
                .min()
                .unwrap_or(0)
                .max(self.config.park_floor)
        };
        for &i in &active {
            let min_states = min_over(arms[i].refuter);
            let ballooning = effective(i) as f64 > self.config.balloon_ratio * min_states as f64;
            if ballooning {
                self.stats[i].strikes += 1;
                if self.stats[i].strikes >= self.config.park_after {
                    self.stats[i].parked = true;
                }
            } else {
                self.stats[i].strikes = 0;
                self.stats[i].parked = false;
            }
        }
        // Never park everyone: if no active arm is schedulable, unpark
        // them all — a parked arm resumes once it is the only hope.
        if active.iter().all(|&i| self.stats[i].parked) {
            for &i in &active {
                self.stats[i].parked = false;
                self.stats[i].strikes = 0;
            }
        }
        // Never bench every prover in favor of refuters alone: a
        // refuter can win with a bug but cannot prove, so on a safe
        // instance a provers-parked race would crawl through the
        // refuter's whole bound budget before anyone could conclude.
        let provers: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| !arms[i].refuter)
            .collect();
        if !provers.is_empty() && provers.iter().all(|&i| self.stats[i].parked) {
            for &i in &provers {
                self.stats[i].parked = false;
                self.stats[i].strikes = 0;
            }
        }

        // One turn per schedulable arm; demoted (struck but not yet
        // parked) arms only run every other cycle.
        let mut cycle: Vec<usize> = Vec::new();
        for &i in &active {
            if self.stats[i].parked {
                continue;
            }
            if self.stats[i].strikes > 0 && self.cycles.is_multiple_of(2) {
                continue;
            }
            cycle.push(i);
        }
        if cycle.is_empty() {
            // All survivors demoted this cycle: run them anyway.
            cycle.extend(active.iter().filter(|&&i| !self.stats[i].parked));
        }

        // Leader bonus: a plateauing prover first, else the prover
        // with the smallest delta/elapsed trend; ties fall to the
        // earliest arm (lineup order is preference order). Withheld
        // when the leader is already `max_lead` rounds ahead — and,
        // under layer sharing, from a leader about to explore *live*
        // while a same-store prover sits at or behind its bound: that
        // sibling replays the store's layers for free and may conclude
        // at a shallower bound, so racing the store deeper — even from
        // a tie — would pay for layers nobody may need, with no
        // compensating saving (the sibling's rounds cost ≈ nothing
        // either way). Same-store provers therefore advance the live
        // frontier in lockstep; bonus turns remain for replay catch-up
        // and for arms whose store nobody else consumes.
        let min_rounds = active.iter().map(|&i| arms[i].rounds).min().unwrap_or(0);
        let speculative_blocked = |i: usize| -> bool {
            let Some(store) = arms[i].store else {
                return false;
            };
            if arms[i].rounds < arms[i].frontier {
                return false; // next steps replay existing layers
            }
            active.iter().any(|&j| {
                j != i
                    && !arms[j].refuter
                    && arms[j].store == Some(store)
                    && arms[j].rounds <= arms[i].rounds
            })
        };
        let mut leader: Option<usize> = None;
        let mut best = (u8::MAX, f64::INFINITY);
        for &i in &cycle {
            if arms[i].refuter
                || arms[i].rounds >= min_rounds + self.config.max_lead
                || speculative_blocked(i)
            {
                continue;
            }
            let stats = &self.stats[i];
            // No bonus without evidence: a full trend window or a
            // recorded plateau.
            let trend = stats.trend(self.config.window);
            if trend.is_none() && !stats.plateaued() {
                continue;
            }
            let key = (
                if stats.plateaued() { 0u8 } else { 1u8 },
                trend.unwrap_or(f64::INFINITY),
            );
            // Strictly-less keeps the earliest arm on ties: lineup
            // order is preference order (Alg. 3 before Scheme 1).
            if key < best {
                best = key;
                leader = Some(i);
            }
        }
        if let Some(leader) = leader {
            for _ in 0..self.config.bonus_turns {
                cycle.push(leader);
            }
        }

        // Popped from the back.
        cycle.reverse();
        self.plan = cycle;
    }
}

impl Scheduler for FrontierAwareScheduler {
    fn next_arm(&mut self, arms: &[ArmView]) -> Option<usize> {
        self.ensure_stats(arms.len());
        loop {
            // Serve the plan, skipping entries gone stale (retired
            // since planning).
            while let Some(i) = self.plan.pop() {
                if !arms[i].retired {
                    return Some(i);
                }
            }
            if arms.iter().all(|a| a.retired) {
                return None;
            }
            self.plan_cycle(arms);
            if self.plan.is_empty() {
                // Defensive: with at least one non-retired arm the
                // planner always emits a turn, but never loop forever.
                return (0..arms.len()).find(|&i| !arms[i].retired);
            }
        }
    }

    fn record(&mut self, index: usize, info: &RoundInfo) {
        self.ensure_stats(index + 1);
        let stats = &mut self.stats[index];
        // Sequence information (grew/plateau) is exact for replays
        // too; the arm's growth log is byte-identical either way.
        stats.last_plateaued = matches!(
            info.event,
            crate::SequenceEvent::NewPlateau | crate::SequenceEvent::OngoingPlateau
        );
        // Cost samples come from live rounds only: a replay's ≈ 0
        // elapsed and zero delta would fake a perfect trend and
        // corrupt the balloon/lead accounting.
        if info.replayed {
            return;
        }
        stats
            .recent
            .push((info.delta_states, info.elapsed.as_secs_f64()));
        let window = self.config.window;
        if stats.recent.len() > window {
            let drop = stats.recent.len() - window;
            stats.recent.drain(..drop);
        }
    }

    fn is_parked(&self, index: usize) -> bool {
        self.stats.get(index).is_some_and(|s| s.parked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequenceEvent;
    use std::time::Duration;

    fn info(k: usize, states: usize, delta: usize, event: SequenceEvent) -> RoundInfo {
        RoundInfo {
            k,
            states,
            delta_states: delta,
            elapsed: Duration::from_micros(100),
            event,
            replayed: false,
        }
    }

    fn view(states: usize, rounds: usize, refuter: bool) -> ArmView {
        ArmView {
            retired: false,
            states,
            rounds,
            refuter,
            store: None,
            frontier: 0,
        }
    }

    /// Round-robin cycles arms in order, skipping retired ones.
    #[test]
    fn round_robin_skips_retired() {
        let mut rr = RoundRobinScheduler::new();
        let mut arms = vec![view(1, 0, false), view(1, 0, false), view(1, 0, false)];
        assert_eq!(rr.next_arm(&arms), Some(0));
        assert_eq!(rr.next_arm(&arms), Some(1));
        arms[2].retired = true;
        assert_eq!(rr.next_arm(&arms), Some(0));
        arms[0].retired = true;
        arms[1].retired = true;
        assert_eq!(rr.next_arm(&arms), None);
    }

    /// Drives both schedulers over a synthetic race: arm 0 plateaus
    /// (the likely winner), arm 1's states balloon every round. The
    /// frontier-aware scheduler must park the ballooning arm;
    /// round-robin must keep stepping it.
    #[test]
    fn frontier_aware_parks_ballooning_arm_round_robin_does_not() {
        let config = FrontierConfig::default();
        let mut fa = FrontierAwareScheduler::new(config.clone());
        let mut rr = RoundRobinScheduler::new();

        let mut fa_turns = [0usize; 2];
        let mut rr_turns = [0usize; 2];
        for (sched, turns) in [
            (&mut fa as &mut dyn Scheduler, &mut fa_turns),
            (&mut rr as &mut dyn Scheduler, &mut rr_turns),
        ] {
            // Arm 0: lean, plateauing. Arm 1: balloons 10x per round.
            let mut states = [100usize, 100usize];
            let mut rounds = [0usize, 0usize];
            for _ in 0..60 {
                let arms = [
                    view(states[0], rounds[0], false),
                    view(states[1], rounds[1], false),
                ];
                let Some(i) = sched.next_arm(&arms) else {
                    break;
                };
                turns[i] += 1;
                let (delta, event) = if i == 0 {
                    (0, SequenceEvent::OngoingPlateau)
                } else {
                    let grown = states[1].saturating_mul(10);
                    let delta = grown - states[1];
                    states[1] = grown;
                    (delta, SequenceEvent::Grew)
                };
                rounds[i] += 1;
                sched.record(i, &info(rounds[i], states[i], delta, event));
            }
        }

        // Round-robin alternates: the ballooning arm gets half the
        // turns, and is never parked.
        assert_eq!(rr_turns[0], rr_turns[1]);
        assert!(!rr.is_parked(1));

        // Frontier-aware parks arm 1 and starves it of further turns.
        assert!(fa.is_parked(1), "ballooning arm was not parked");
        assert!(!fa.is_parked(0));
        assert!(
            fa_turns[1] < fa_turns[0] / 2,
            "parked arm kept its turns: {fa_turns:?}"
        );
    }

    /// A parked arm is resumed once every sibling retires: parking
    /// never loses a verdict that round-robin would reach.
    #[test]
    fn parked_arm_resumes_when_alone() {
        let mut fa = FrontierAwareScheduler::new(FrontierConfig {
            park_after: 1,
            ..FrontierConfig::default()
        });
        let mut arms = [view(100, 3, false), view(1_000_000, 3, false)];
        // Force a balloon evaluation by exhausting the first plan.
        for _ in 0..10 {
            let i = fa.next_arm(&arms).unwrap();
            assert_eq!(i, 0, "ballooning arm scheduled while sibling active");
            fa.record(i, &info(0, arms[i].states, 10, SequenceEvent::Grew));
        }
        assert!(fa.is_parked(1));
        arms[0].retired = true;
        assert_eq!(fa.next_arm(&arms), Some(1), "parked arm must resume");
    }

    /// The leader bonus goes to the plateauing prover, never to a
    /// refuter, and respects the lead cap.
    #[test]
    fn bonus_prefers_plateauing_prover() {
        let config = FrontierConfig::default();
        let mut fa = FrontierAwareScheduler::new(config.clone());
        let mut rounds = [0usize; 3];
        let mut turns = [0usize; 3];
        // Arm 0: prover, plateauing. Arm 1: prover, growing fast.
        // Arm 2: refuter, tiny deltas (tempting trend, must not lead).
        // (24 turns ≈ the horizon of a real race: in a session the
        // plateauing leader concludes before the lead cap rotates the
        // bonus away from it.)
        for _ in 0..24 {
            let arms = [
                view(500, rounds[0], false),
                view(500, rounds[1], false),
                view(500, rounds[2], true),
            ];
            let Some(i) = fa.next_arm(&arms) else { break };
            turns[i] += 1;
            rounds[i] += 1;
            let (delta, event) = match i {
                0 => (0, SequenceEvent::OngoingPlateau),
                1 => (200, SequenceEvent::Grew),
                _ => (1, SequenceEvent::Grew),
            };
            fa.record(i, &info(rounds[i], 500, delta, event));
        }
        assert!(
            turns[0] > turns[1] && turns[0] > turns[2],
            "plateauing prover did not lead: {turns:?}"
        );
        // The lead cap kept the leader within reach of the others.
        assert!(
            rounds[0]
                <= rounds.iter().copied().min().unwrap() + config.max_lead + config.bonus_turns,
            "lead cap violated: {rounds:?}"
        );
    }

    /// A profile written by `to_profile` parses back to the exact
    /// config and name — the contract between `cuba tune` (writer)
    /// and `--schedule frontier:<profile>` (reader).
    #[test]
    fn profile_round_trips() {
        let config = FrontierConfig {
            window: 4,
            bonus_turns: 2,
            max_lead: 9,
            balloon_ratio: 12.5,
            park_floor: 128,
            park_after: 3,
            threads: 2,
        };
        let text = config.to_profile("tuned-ci");
        let parsed = FrontierConfig::parse_profile(&text).expect("round trip");
        assert_eq!(parsed.name, "tuned-ci");
        assert_eq!(parsed.config, config);
        // Defaults round-trip too (integral balloon_ratio rendering).
        let default = FrontierConfig::default();
        let parsed = FrontierConfig::parse_profile(&default.to_profile("d")).unwrap();
        assert_eq!(parsed.config, default);
        // Partial profiles fill from the defaults; a missing name is
        // "unnamed".
        let partial = FrontierConfig::parse_profile("window = 5\n").unwrap();
        assert_eq!(partial.name, "unnamed");
        assert_eq!(partial.config.window, 5);
        assert_eq!(
            partial.config.bonus_turns,
            FrontierConfig::default().bonus_turns
        );
    }

    /// Malformed profiles are rejected with the line number and
    /// without echoing content.
    #[test]
    fn profile_rejects_malformed_input() {
        for (text, needle) in [
            ("window five", "line 1"),
            ("# ok\nwarp_factor = 9", "unknown tuning key"),
            ("window = -1", "bad value"),
            ("window = 0", "window must be at least 1"),
            ("balloon_ratio = 0.5", "balloon_ratio must exceed 1"),
            ("name = two words", "one non-empty token"),
        ] {
            let error = FrontierConfig::parse_profile(text).unwrap_err();
            assert!(error.contains(needle), "{text:?}: {error}");
        }
        assert!(FrontierConfig::parse_inline("window=2,oops").is_err());
        assert!(FrontierConfig::parse_inline("bogus=1").is_err());
        let inline = FrontierConfig::parse_inline("window=2,bonus_turns=1").unwrap();
        assert_eq!((inline.window, inline.bonus_turns), (2, 1));
    }

    /// The shared spec grammar: policy names, inline tunings, and
    /// resolver-backed profiles.
    #[test]
    fn parse_spec_grammar() {
        let no_profiles = |name: &str| -> Result<FrontierConfig, String> {
            Err(format!("unknown profile '{name}'"))
        };
        assert_eq!(
            SchedulePolicy::parse_spec("round-robin", &no_profiles).unwrap(),
            SchedulePolicy::RoundRobin
        );
        assert_eq!(
            SchedulePolicy::parse_spec("frontier", &no_profiles).unwrap(),
            SchedulePolicy::default()
        );
        let inline =
            SchedulePolicy::parse_spec("frontier:window=2,max_lead=4", &no_profiles).unwrap();
        match inline {
            SchedulePolicy::FrontierAware(config) => {
                assert_eq!((config.window, config.max_lead), (2, 4));
            }
            other => panic!("unexpected policy {other:?}"),
        }
        // Named profiles go through the resolver.
        let resolver = |name: &str| -> Result<FrontierConfig, String> {
            assert_eq!(name, "tuned");
            Ok(FrontierConfig {
                window: 7,
                ..FrontierConfig::default()
            })
        };
        match SchedulePolicy::parse_spec("frontier:tuned", &resolver).unwrap() {
            SchedulePolicy::FrontierAware(config) => assert_eq!(config.window, 7),
            other => panic!("unexpected policy {other:?}"),
        }
        assert!(SchedulePolicy::parse_spec("frontier:", &no_profiles).is_err());
        assert!(SchedulePolicy::parse_spec("frontier:missing", &no_profiles).is_err());
        assert!(SchedulePolicy::parse_spec("lifo", &no_profiles).is_err());
        assert!(SchedulePolicy::parse_spec_with_files("frontier:/no/such/profile").is_err());
    }

    /// Policy plumbing: names, default, and scheduler construction.
    #[test]
    fn policy_surface() {
        assert_eq!(SchedulePolicy::RoundRobin.name(), "round-robin");
        assert_eq!(SchedulePolicy::default().name(), "frontier");
        assert_eq!(SchedulePolicy::frontier_aware(), SchedulePolicy::default());
        let mut s = SchedulePolicy::RoundRobin.scheduler();
        assert_eq!(s.next_arm(&[view(1, 0, false)]), Some(0));
    }
}
