//! Streaming analysis sessions: a set of [`Engine`]s racing
//! round-robin over one problem, yielding [`SessionEvent`]s.
//!
//! A session owns its engines and advances them one round at a time,
//! in lineup order. The first *conclusive* verdict (Safe/Unsafe)
//! decides the session and cancels the remaining arms via the shared
//! [`CancelToken`]; `Undetermined` conclusions and engine failures
//! merely retire an arm. This is the single-core rendition of the
//! paper's §6 race — equivalent to the two-thread version because all
//! arms advance through the same bounds in lockstep.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cuba_explore::{CancelToken, ExploreBudget, Interrupt, SubsumptionMode};
use cuba_pds::Cpds;
use cuba_telemetry::metrics::{round_scope, Stage, METRICS};
use cuba_telemetry::trace;

use crate::engine::{build_engine, Engine, EngineKind, EngineParams, RoundCtx, RoundOutcome};
use crate::schedule::{ArmView, SchedulePolicy, Scheduler};
use crate::{
    CubaError, CubaOutcome, EngineUsed, Property, SessionEvent, StageTimes, SystemArtifacts,
    Verdict,
};

/// Configuration of an [`AnalysisSession`] (and of the
/// [`Portfolio`](crate::Portfolio) scheduler built on top of it).
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Exploration budget handed to every engine.
    pub budget: ExploreBudget,
    /// Round limit per engine (also the bound of CBA refuter arms).
    pub max_k: usize,
    /// Subsumption mode for symbolic engines.
    pub subsumption: SubsumptionMode,
    /// Wall-clock limit for the whole session. Checked between rounds
    /// *and* inside long rounds (threaded into the engines'
    /// [`ExploreBudget::interrupt`]).
    pub timeout: Option<Duration>,
    /// External cancellation. The session always creates a token; when
    /// one is supplied here it is used directly, so the caller can
    /// cancel from another thread.
    pub cancel: Option<CancelToken>,
    /// How turns are distributed over the racing arms (see
    /// [`SchedulePolicy`]); defaults to the cost-aware
    /// [`FrontierAware`](SchedulePolicy::FrontierAware) policy.
    pub schedule: SchedulePolicy,
}

impl SessionConfig {
    /// Defaults matching [`CubaConfig`](crate::CubaConfig): generous
    /// budget, 64 rounds, exact subsumption, no timeout.
    pub fn new() -> Self {
        SessionConfig {
            budget: ExploreBudget::default(),
            max_k: 64,
            subsumption: SubsumptionMode::Exact,
            timeout: None,
            cancel: None,
            schedule: SchedulePolicy::default(),
        }
    }
}

/// One racing arm of a session.
struct Arm {
    engine: Box<dyn Engine>,
    /// Set once the arm concluded (any verdict) or failed.
    retired: bool,
    /// The error that retired the arm, if it failed.
    error: Option<CubaError>,
}

/// A streaming analysis of one `(Cpds, Property)` problem by a lineup
/// of engines.
///
/// Use it as an iterator of [`SessionEvent`]s (then read
/// [`outcome`](Self::outcome)), or call [`run`](Self::run) /
/// [`run_with`](Self::run_with) to drain it in one go.
pub struct AnalysisSession {
    arms: Vec<Arm>,
    ctx: RoundCtx,
    cancel: CancelToken,
    fcr_holds: bool,
    start: Instant,
    /// Distributes turns over the arms per the configured policy.
    scheduler: Box<dyn Scheduler>,
    /// Total wall-clock spent inside completed rounds, all arms.
    round_wall: Duration,
    /// Rounds computed live (layers explored by this session's arms).
    rounds_explored: usize,
    /// Rounds replayed from layers a shared explorer already held.
    rounds_replayed: usize,
    /// Per-stage wall-clock split of the session's steps.
    stages: StageTimes,
    pending: VecDeque<SessionEvent>,
    outcome: Option<Result<CubaOutcome, CubaError>>,
    /// Set once the final `Verdict` event has been queued.
    decided: bool,
}

impl AnalysisSession {
    /// Builds a session racing the given engine lineup.
    ///
    /// Arms whose kind requires FCR are dropped when the system lacks
    /// it; if that empties the lineup the session refuses to start.
    ///
    /// # Errors
    ///
    /// [`CubaError::FcrRequired`] when no arm is applicable.
    pub fn new(
        cpds: Cpds,
        property: Property,
        lineup: &[EngineKind],
        config: &SessionConfig,
    ) -> Result<Self, CubaError> {
        let artifacts = Arc::new(SystemArtifacts::new());
        Self::with_fuse_lineup(cpds, property, lineup, lineup, None, config, &artifacts)
    }

    /// As [`new`](Self::new), but reusing cached per-system artifacts
    /// (FCR verdict, `G ∩ Z`) from a
    /// [`SuiteCache`](crate::SuiteCache) — the "one system, many
    /// properties" entry point.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_artifacts(
        cpds: Cpds,
        property: Property,
        lineup: &[EngineKind],
        config: &SessionConfig,
        artifacts: &Arc<SystemArtifacts>,
    ) -> Result<Self, CubaError> {
        Self::with_fuse_lineup(cpds, property, lineup, lineup, None, config, artifacts)
    }

    /// As [`new`](Self::new), but the fuse-collapse sibling check runs
    /// against `fuse_lineup` instead of `lineup`, and an extra cancel
    /// token can be wired in. This lets
    /// [`Portfolio::run_parallel`](crate::Portfolio::run_parallel)
    /// split a lineup into single-arm sessions that (a) still run the
    /// Alg. 3 arms *pure* (no duplicated Scheme 1 collapse test, no
    /// misattributed conclusions) whenever a dedicated Scheme 1 arm
    /// races elsewhere, and (b) poll the shared race token alongside
    /// the caller's own token.
    pub(crate) fn with_fuse_lineup(
        cpds: Cpds,
        property: Property,
        lineup: &[EngineKind],
        fuse_lineup: &[EngineKind],
        extra_cancel: Option<CancelToken>,
        config: &SessionConfig,
        artifacts: &Arc<SystemArtifacts>,
    ) -> Result<Self, CubaError> {
        let fcr_holds = artifacts.fcr(&cpds).holds();
        let kinds: Vec<EngineKind> = lineup
            .iter()
            .copied()
            .filter(|kind| fcr_holds || !kind.needs_fcr())
            .collect();
        if kinds.is_empty() {
            return Err(CubaError::FcrRequired);
        }

        // The session's own race token (fired on a conclusive verdict)
        // plus, separately, the caller's external token: the session
        // must never fire a token it does not own — callers share
        // theirs across independent sessions.
        let cancel = CancelToken::new();
        let mut interrupt = Interrupt::none().with_cancel(cancel.clone());
        if let Some(external) = &config.cancel {
            interrupt = interrupt.with_cancel(external.clone());
        }
        if let Some(extra) = extra_cancel {
            interrupt = interrupt.with_cancel(extra);
        }
        if let Some(timeout) = config.timeout {
            interrupt = interrupt.with_timeout(timeout);
        }
        // Share the cached G∩Z with every Alg. 3 arm — but only once
        // the lineup actually contains one, so purely symbolic or
        // refuter lineups never pay for it.
        let g_cap_z = kinds
            .iter()
            .any(|k| matches!(k, EngineKind::Alg3Explicit | EngineKind::Alg3Symbolic))
            .then(|| artifacts.g_cap_z(&cpds));
        // A tuned frontier profile may carry a saturation thread
        // count; it fills in only when the budget left the knob on
        // auto, so an explicit `--threads` always wins.
        let mut budget = config.budget.clone().with_interrupt(interrupt.clone());
        if budget.threads == 0 {
            if let crate::SchedulePolicy::FrontierAware(fc) = &config.schedule {
                if fc.threads != 0 {
                    budget.threads = fc.threads;
                }
            }
        }
        let params = EngineParams {
            budget,
            max_k: config.max_k,
            subsumption: config.subsumption,
            // Fuse the Scheme 1 collapse test into an Algorithm 3 arm
            // only when no dedicated Scheme 1 arm of the same
            // representation races alongside.
            fuse_collapse: true,
            skip_fcr_check: true,
            g_cap_z,
            // Arms borrow the system's shared explorers: one `(Rk)`
            // and/or `(Sk)` exploration per system, however many arms,
            // sessions, and properties consume it.
            artifacts: Some(artifacts.clone()),
        };
        let mut arms = Vec::with_capacity(kinds.len());
        for kind in &kinds {
            let fuse = match kind {
                EngineKind::Alg3Explicit => !fuse_lineup.contains(&EngineKind::Scheme1Explicit),
                EngineKind::Alg3Symbolic => !fuse_lineup.contains(&EngineKind::Scheme1Symbolic),
                _ => true,
            };
            let params = EngineParams {
                fuse_collapse: fuse,
                ..params.clone()
            };
            arms.push(Arm {
                engine: build_engine(*kind, &cpds, &property, &params)?,
                retired: false,
                error: None,
            });
        }
        Ok(AnalysisSession {
            arms,
            ctx: RoundCtx::with_interrupt(interrupt),
            cancel,
            fcr_holds,
            start: Instant::now(),
            scheduler: config.schedule.scheduler(),
            round_wall: Duration::ZERO,
            rounds_explored: 0,
            rounds_replayed: 0,
            stages: StageTimes::default(),
            pending: VecDeque::new(),
            outcome: None,
            decided: false,
        })
    }

    /// The session's cancellation token: cancel it (from any thread)
    /// to stop this session cooperatively, mid-round included. The
    /// session fires it itself when an arm concludes conclusively; an
    /// external token passed via [`SessionConfig::cancel`] is polled
    /// too but never fired by the session.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether FCR holds for the problem under analysis.
    pub fn fcr_holds(&self) -> bool {
        self.fcr_holds
    }

    /// The session outcome, once the event stream is drained.
    pub fn outcome(&self) -> Option<&Result<CubaOutcome, CubaError>> {
        self.outcome.as_ref()
    }

    /// Takes the outcome out of a drained session.
    pub fn into_outcome(self) -> Result<CubaOutcome, CubaError> {
        self.outcome.unwrap_or(Err(CubaError::Explore(
            cuba_explore::ExploreError::Cancelled,
        )))
    }

    /// Produces the next event, stepping one engine if none is queued.
    /// `None` once the stream is exhausted (outcome available).
    pub fn next_event(&mut self) -> Option<SessionEvent> {
        loop {
            if let Some(event) = self.pending.pop_front() {
                return Some(event);
            }
            if self.decided {
                return None;
            }
            self.step_once();
        }
    }

    /// Steps the arm picked by the schedule policy, queueing the
    /// resulting events, or finalizes the session when no arm remains.
    fn step_once(&mut self) {
        let mut decision_span = trace::span("schedule-decision");
        let views: Vec<ArmView> = self
            .arms
            .iter()
            .map(|arm| ArmView {
                retired: arm.retired,
                states: arm.engine.states(),
                rounds: arm.engine.rounds(),
                refuter: arm.engine.id() == EngineUsed::CbaBaseline,
                store: arm.engine.store_key(),
                frontier: arm.engine.frontier(),
            })
            .collect();
        let picked = self.scheduler.next_arm(&views);
        match picked {
            Some(index) => decision_span.arg("arm", index),
            None => decision_span.arg("arm", "none"),
        }
        drop(decision_span);
        let Some(index) = picked else {
            self.finalize();
            return;
        };
        let arm = &mut self.arms[index];
        let id = arm.engine.id();
        let mut round_span = trace::span_args("round", vec![("engine", id.to_string().into())]);
        let scope = round_scope();
        let step_start = Instant::now();
        let result = arm.engine.step(&mut self.ctx);
        let wall = step_start.elapsed();
        let [sat_us, _, merge_us] = scope.take();
        let step_stages = StageTimes {
            saturate: Duration::from_micros(sat_us),
            check: wall.saturating_sub(Duration::from_micros(sat_us)),
            merge: Duration::from_micros(merge_us),
        };
        METRICS
            .stage_duration_us(Stage::Check)
            .observe(step_stages.check.as_micros() as u64);
        self.stages.add(&step_stages);
        if let Ok(RoundOutcome::Continue(info))
        | Ok(RoundOutcome::Concluded {
            round: Some(info), ..
        }) = &result
        {
            round_span.arg("k", info.k);
            round_span.arg("states", info.states);
        }
        drop(round_span);
        match result {
            Ok(RoundOutcome::Continue(info)) => {
                self.note_round(index, id, &info);
            }
            Ok(RoundOutcome::Concluded { round, verdict }) => {
                arm.retired = true;
                // `id()` may change with the conclusion (the fused
                // engine attributes collapses to Scheme 1).
                let id = arm.engine.id();
                let rounds = arm.engine.rounds();
                let states = arm.engine.states();
                if let Some(info) = round {
                    self.note_round(index, id, &info);
                }
                self.pending.push_back(SessionEvent::EngineConcluded {
                    engine: id,
                    verdict: verdict.clone(),
                    rounds,
                    states,
                });
                if !matches!(verdict, Verdict::Undetermined { .. }) {
                    self.decide(Ok(CubaOutcome {
                        verdict,
                        fcr_holds: self.fcr_holds,
                        engine: id,
                        states,
                        rounds,
                        duration: self.start.elapsed(),
                        round_wall: self.round_wall,
                        rounds_explored: self.rounds_explored,
                        rounds_replayed: self.rounds_replayed,
                        stages: self.stages,
                    }));
                }
            }
            Err(error) => {
                arm.retired = true;
                arm.error = Some(error.clone());
                self.pending
                    .push_back(SessionEvent::EngineFailed { engine: id, error });
            }
        }
    }

    /// Books a completed round: scheduler feedback, cost accounting,
    /// the explored/replayed counters, and the streamed event.
    fn note_round(&mut self, index: usize, id: EngineUsed, info: &crate::RoundInfo) {
        self.scheduler.record(index, info);
        self.round_wall += info.elapsed;
        if info.replayed {
            self.rounds_replayed += 1;
            METRICS.rounds_replayed.inc();
        } else {
            self.rounds_explored += 1;
            METRICS.rounds_explored.inc();
        }
        self.pending.push_back(round_event(id, info));
    }

    /// All arms are retired: pick the best available answer.
    ///
    /// Preference order mirrors the old driver's `pick_winner`:
    /// a conclusive verdict (handled in `step_once`), then an
    /// `Undetermined` conclusion, then interruption, then the first
    /// hard error.
    fn finalize(&mut self) {
        // An Undetermined conclusion from the arm that got furthest.
        let undetermined = self
            .arms
            .iter()
            .filter(|arm| arm.error.is_none())
            .filter(|arm| arm.engine.verdict().is_some())
            .max_by_key(|arm| arm.engine.rounds());
        if let Some(arm) = undetermined {
            let verdict = arm.engine.verdict().expect("filtered above").clone();
            let outcome = CubaOutcome {
                verdict,
                fcr_holds: self.fcr_holds,
                engine: arm.engine.id(),
                states: arm.engine.states(),
                rounds: arm.engine.rounds(),
                duration: self.start.elapsed(),
                round_wall: self.round_wall,
                rounds_explored: self.rounds_explored,
                rounds_replayed: self.rounds_replayed,
                stages: self.stages,
            };
            self.decide(Ok(outcome));
            return;
        }
        // Interruption beats hard errors: the session was told to
        // stop, which is an Undetermined answer, not a failure.
        let interrupted = self.arms.iter().find_map(|arm| match &arm.error {
            Some(CubaError::Explore(e)) if e.is_interruption() => Some(e.clone()),
            _ => None,
        });
        if let Some(reason) = interrupted {
            let best = self
                .arms
                .iter()
                .max_by_key(|arm| arm.engine.rounds())
                .expect("sessions have at least one arm");
            let outcome = CubaOutcome {
                verdict: Verdict::Undetermined {
                    reason: reason.to_string(),
                },
                fcr_holds: self.fcr_holds,
                engine: best.engine.id(),
                states: best.engine.states(),
                rounds: best.engine.rounds(),
                duration: self.start.elapsed(),
                round_wall: self.round_wall,
                rounds_explored: self.rounds_explored,
                rounds_replayed: self.rounds_replayed,
                stages: self.stages,
            };
            self.decide(Ok(outcome));
            return;
        }
        let error = self
            .arms
            .iter()
            .find_map(|arm| arm.error.clone())
            .unwrap_or(CubaError::Explore(cuba_explore::ExploreError::Cancelled));
        self.outcome = Some(Err(error));
        self.decided = true;
    }

    /// Records the outcome and queues the final event. A *conclusive*
    /// verdict also fires the shared cancel token, stopping sibling
    /// arms mid-round — including arms of other single-arm sessions
    /// racing on the same token ([`Portfolio::run_parallel`]
    /// (crate::Portfolio::run_parallel)). Undetermined outcomes leave
    /// the token alone so a retiring refuter cannot kill the race.
    fn decide(&mut self, outcome: Result<CubaOutcome, CubaError>) {
        if let Ok(o) = &outcome {
            self.pending
                .push_back(SessionEvent::Verdict { outcome: o.clone() });
            if !matches!(o.verdict, Verdict::Undetermined { .. }) {
                self.cancel.cancel();
            }
        }
        self.outcome = Some(outcome);
        self.decided = true;
    }

    /// Drains the stream, discarding events.
    ///
    /// # Errors
    ///
    /// The first hard engine error when no arm produced an answer.
    pub fn run(mut self) -> Result<CubaOutcome, CubaError> {
        while self.next_event().is_some() {}
        self.into_outcome()
    }

    /// Drains the stream through a callback.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with(
        mut self,
        mut on_event: impl FnMut(&SessionEvent),
    ) -> Result<CubaOutcome, CubaError> {
        while let Some(event) = self.next_event() {
            on_event(&event);
        }
        self.into_outcome()
    }
}

/// Builds the `RoundCompleted` event for a computed round.
fn round_event(engine: EngineUsed, info: &crate::RoundInfo) -> SessionEvent {
    SessionEvent::RoundCompleted {
        engine,
        k: info.k,
        states: info.states,
        delta_states: info.delta_states,
        elapsed: info.elapsed,
        event: info.event,
        replayed: info.replayed,
    }
}

impl Iterator for AnalysisSession {
    type Item = SessionEvent;

    fn next(&mut self) -> Option<SessionEvent> {
        self.next_event()
    }
}

impl std::fmt::Debug for AnalysisSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("arms", &self.arms.len())
            .field("decided", &self.decided)
            .field("fcr_holds", &self.fcr_holds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use crate::{ConvergenceMethod, EngineUsed};
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    fn explicit_race() -> Vec<EngineKind> {
        vec![
            EngineKind::Alg3Explicit,
            EngineKind::Scheme1Explicit,
            EngineKind::CbaRefuter,
        ]
    }

    /// The streaming acceptance shape: at least one RoundCompleted per
    /// bound 0..=5 for the winning engine, and a final Verdict event
    /// agreeing with the outcome.
    #[test]
    fn fig1_streams_rounds_and_verdict() {
        let mut session = AnalysisSession::new(
            fig1(),
            Property::True,
            &explicit_race(),
            &SessionConfig::new(),
        )
        .unwrap();
        let mut alg3_rounds = Vec::new();
        let mut last = None;
        for event in &mut session {
            if let SessionEvent::RoundCompleted {
                engine: EngineUsed::Alg3Explicit,
                k,
                ..
            } = &event
            {
                alg3_rounds.push(*k);
            }
            last = Some(event);
        }
        assert_eq!(alg3_rounds, vec![0, 1, 2, 3, 4, 5, 6]);
        let outcome = session.outcome().unwrap().as_ref().unwrap();
        assert!(matches!(
            outcome.verdict,
            Verdict::Safe {
                k: 5,
                method: ConvergenceMethod::GeneratorTest
            }
        ));
        assert_eq!(outcome.engine, EngineUsed::Alg3Explicit);
        assert!(outcome.fcr_holds);
        match last {
            Some(SessionEvent::Verdict { outcome: o }) => {
                assert_eq!(o.verdict, outcome.verdict);
            }
            other => panic!("expected final Verdict event, got {other:?}"),
        }
    }

    /// Explicit-only lineups refuse FCR-violating systems.
    #[test]
    fn explicit_lineup_requires_fcr() {
        let err = AnalysisSession::new(
            fig2(),
            Property::True,
            &[EngineKind::Alg3Explicit, EngineKind::Scheme1Explicit],
            &SessionConfig::new(),
        )
        .unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    /// Inapplicable arms are dropped, applicable ones keep racing.
    #[test]
    fn mixed_lineup_drops_explicit_arms_without_fcr() {
        let lineup = [
            EngineKind::Alg3Explicit,
            EngineKind::Alg3Symbolic,
            EngineKind::Scheme1Symbolic,
        ];
        let session =
            AnalysisSession::new(fig2(), Property::True, &lineup, &SessionConfig::new()).unwrap();
        let outcome = session.run().unwrap();
        assert!(outcome.verdict.is_safe());
        assert!(!outcome.fcr_holds);
    }

    /// A pre-cancelled token stops the session before any round; the
    /// outcome is Undetermined, not an error.
    #[test]
    fn cancellation_before_first_round() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let config = SessionConfig {
            cancel: Some(cancel),
            ..SessionConfig::new()
        };
        let session =
            AnalysisSession::new(fig1(), Property::True, &explicit_race(), &config).unwrap();
        let outcome = session.run().unwrap();
        match outcome.verdict {
            Verdict::Undetermined { reason } => assert!(reason.contains("cancelled")),
            other => panic!("expected Undetermined, got {other:?}"),
        }
    }

    /// An expired deadline interrupts *mid-round*: Fig. 2's first
    /// explicit context closure diverges, so without the in-loop poll
    /// this test would spin until the budget, not the deadline.
    #[test]
    fn deadline_interrupts_mid_round() {
        let config = SessionConfig {
            timeout: Some(Duration::from_millis(30)),
            // A budget big enough that Fig. 2's diverging closure
            // would outlive the deadline many times over.
            budget: ExploreBudget {
                max_states: 50_000_000,
                max_states_per_context: 50_000_000,
                max_stack_depth: 1_000_000,
                ..ExploreBudget::default()
            },
            ..SessionConfig::new()
        };
        // Force the *explicit* engine onto the FCR-violating system by
        // building it directly (the session would drop it).
        let alg3_config = crate::Alg3Config {
            budget: config
                .budget
                .clone()
                .with_interrupt(Interrupt::none().with_timeout(Duration::from_millis(30))),
            skip_fcr_check: true,
            ..crate::Alg3Config::default()
        };
        let start = Instant::now();
        let mut engine =
            crate::Alg3Engine::explicit(&fig2(), &Property::True, &alg3_config).unwrap();
        let mut ctx = RoundCtx::new();
        // Round 0 is the initial state; round 1 diverges.
        engine.step(&mut ctx).unwrap();
        let err = loop {
            match engine.step(&mut ctx) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(
            err,
            CubaError::Explore(cuba_explore::ExploreError::DeadlineExceeded)
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline was not honored promptly: {:?}",
            start.elapsed()
        );
    }

    /// Session-level deadline: all arms retire with DeadlineExceeded
    /// and the session reports Undetermined.
    #[test]
    fn session_deadline_yields_undetermined() {
        // A zero timeout: the deadline (set at session construction)
        // has passed by the first poll, whatever the build profile —
        // in release mode even a few-millisecond deadline can lose
        // the race against Fig. 1's microsecond rounds.
        let config = SessionConfig {
            timeout: Some(Duration::ZERO),
            ..SessionConfig::new()
        };
        let session =
            AnalysisSession::new(fig1(), Property::True, &explicit_race(), &config).unwrap();
        let outcome = session.run().unwrap();
        match outcome.verdict {
            Verdict::Undetermined { reason } => assert!(reason.contains("deadline")),
            other => panic!("expected Undetermined, got {other:?}"),
        }
    }

    /// An unsafe problem is refuted through the session with the same
    /// bound and a replayable witness, whichever arm wins.
    #[test]
    fn unsafe_verdict_with_witness_through_session() {
        let cpds = fig1();
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let session = AnalysisSession::new(
            cpds.clone(),
            property,
            &explicit_race(),
            &SessionConfig::new(),
        )
        .unwrap();
        let outcome = session.run().unwrap();
        match outcome.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 5);
                let w = witness.expect("witness attached");
                assert!(w.replay(&cpds));
            }
            other => panic!("expected Unsafe at 5, got {other:?}"),
        }
    }
}
