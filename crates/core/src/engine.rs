//! The pluggable [`Engine`] abstraction.
//!
//! CUBA's §6 procedure is a *race of engines* over observation
//! sequences: run `Alg 3(T(Rk))` and `Scheme 1(Rk)` concurrently under
//! FCR, fall back to the symbolic engines otherwise, and let a
//! context-bounded refuter hunt for bugs on the side. To race engines,
//! pause them, or stream their per-round observations, each algorithm
//! must be a *resumable round-stepper* instead of a monolithic
//! `for k in 0..max_k` loop. This module defines the common trait; the
//! concrete engines live with their algorithms
//! ([`Alg3Engine`](crate::Alg3Engine),
//! [`Scheme1Engine`](crate::Scheme1Engine),
//! [`CbaEngine`](crate::CbaEngine)) and the original free functions
//! (`alg3_explicit` & co.) remain as thin loops over `step`.

use cuba_explore::{Interrupt, SubsumptionMode};
use cuba_pds::Cpds;

use crate::{
    Alg3Config, Alg3Engine, CbaConfig, CbaEngine, CubaError, EngineUsed, GrowthLog, Scheme1Config,
    Scheme1Engine, SequenceEvent, Verdict,
};

/// Whether an engine can analyze a given system at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// The engine accepts the system.
    Applicable,
    /// The engine cannot run on this system, with the reason (e.g. the
    /// explicit-state engines require finite context reachability).
    Inapplicable(&'static str),
}

impl Applicability {
    /// Whether the engine accepts the system.
    pub fn is_applicable(&self) -> bool {
        matches!(self, Applicability::Applicable)
    }
}

/// Per-step context handed to [`Engine::step`] by the driver loop:
/// carries the cooperative interruption sources so a session can stop
/// an engine *between* rounds even when the engine's own budget has no
/// interrupt wired in (mid-round interruption goes through
/// [`ExploreBudget::interrupt`](cuba_explore::ExploreBudget)).
#[derive(Debug, Clone, Default)]
pub struct RoundCtx {
    /// Polled at the start of every step.
    pub interrupt: Interrupt,
}

impl RoundCtx {
    /// A context that never interrupts.
    pub fn new() -> Self {
        RoundCtx::default()
    }

    /// A context polling the given interruption sources.
    pub fn with_interrupt(interrupt: Interrupt) -> Self {
        RoundCtx { interrupt }
    }
}

/// What one computed round looked like, including its cost — the raw
/// material of budget-aware scheduling
/// ([`SchedulePolicy`](crate::SchedulePolicy)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundInfo {
    /// The context bound `k` of the round.
    pub k: usize,
    /// Total states stored at bound `k` (global states for explicit
    /// engines, symbolic states otherwise).
    pub states: usize,
    /// States added by this round (`states` minus the previous
    /// round's; the whole initial frontier for `k = 0`). The frontier
    /// delta a [`SchedulePolicy`](crate::SchedulePolicy) watches.
    /// Zero for replayed rounds — the shared explorer already held the
    /// layer, so this engine computed nothing.
    pub delta_states: usize,
    /// Wall-clock time the engine spent computing this round. Always
    /// nonzero (clamped to ≥ 1 ns so downstream rates are finite);
    /// ≈ 0 for replayed rounds.
    pub elapsed: std::time::Duration,
    /// How the engine's observation sequence moved (§3, Table 1).
    pub event: SequenceEvent,
    /// Whether the layer was *replayed* from a shared explorer that
    /// had already computed it (for a prior property, or for a sibling
    /// arm of the same race) instead of explored live. Schedulers must
    /// exclude replays from plateau/balloon accounting — a replay's
    /// zero cost says nothing about the arm's real frontier behavior.
    pub replayed: bool,
}

/// Result of one [`Engine::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundOutcome {
    /// A round was computed; the engine can step again.
    Continue(RoundInfo),
    /// The engine is done. `round` is the final computed round, or
    /// `None` when the engine concluded without computing one (round
    /// limit hit, or `step` called after a previous conclusion).
    Concluded {
        /// The final round, if this step computed one.
        round: Option<RoundInfo>,
        /// The verdict. `Undetermined` marks exhaustion (round limit,
        /// or a refuter that ran out of bounds) — a portfolio treats
        /// it as "this arm is out of the race", not as an answer.
        verdict: Verdict,
    },
}

impl RoundOutcome {
    /// The verdict, when this outcome concluded the engine.
    pub fn verdict(&self) -> Option<&Verdict> {
        match self {
            RoundOutcome::Continue(_) => None,
            RoundOutcome::Concluded { verdict, .. } => Some(verdict),
        }
    }

    /// The round info, when a round was computed.
    pub fn round(&self) -> Option<&RoundInfo> {
        match self {
            RoundOutcome::Continue(info) => Some(info),
            RoundOutcome::Concluded { round, .. } => round.as_ref(),
        }
    }
}

/// A resumable CUBA analysis engine: one observation-sequence
/// algorithm, advanced one context bound per [`step`](Engine::step).
///
/// Engines are `Send` so a [`Portfolio`](crate::Portfolio) can race
/// them on OS threads. `step` after a conclusion is a cheap no-op
/// repeating the verdict, so drivers need no extra bookkeeping.
pub trait Engine: Send {
    /// Which algorithm/representation this engine runs. May depend on
    /// the conclusion: the fused explicit engine reports
    /// `Scheme1Explicit` when the `Rk`-collapse rule fired, matching
    /// the attribution of the paper's race.
    fn id(&self) -> EngineUsed;

    /// Human-readable engine name (the paper's notation).
    fn name(&self) -> &'static str {
        match self.id() {
            EngineUsed::Alg3Explicit => "Alg3(T(Rk))",
            EngineUsed::Scheme1Explicit => "Scheme1(Rk)",
            EngineUsed::Alg3Symbolic => "Alg3(T(Sk))",
            EngineUsed::Scheme1Symbolic => "Scheme1(Sk)",
            EngineUsed::CbaBaseline => "CBA",
        }
    }

    /// Whether this engine can analyze `cpds` (the explicit engines
    /// require finite context reachability, §5).
    fn applicability(&self, cpds: &Cpds) -> Applicability;

    /// Computes the next round of the engine's observation sequence.
    ///
    /// # Errors
    ///
    /// Budget exhaustion or interruption, as [`CubaError::Explore`].
    /// An errored engine must not be stepped again.
    fn step(&mut self, ctx: &mut RoundCtx) -> Result<RoundOutcome, CubaError>;

    /// Rounds computed so far (the largest processed `k`).
    fn rounds(&self) -> usize;

    /// States stored by the engine (global or symbolic).
    fn states(&self) -> usize;

    /// Identity of the engine's shared exploration store, when it
    /// borrows one — arms reporting the same key consume one layered
    /// exploration (see [`ArmView`](crate::ArmView)).
    fn store_key(&self) -> Option<usize> {
        None
    }

    /// Deepest bound the engine's store already holds (0 when the
    /// engine owns its exploration outright).
    fn frontier(&self) -> usize {
        0
    }

    /// The engine's observation log (sizes per bound).
    fn growth(&self) -> &GrowthLog;

    /// The verdict, once concluded.
    fn verdict(&self) -> Option<&Verdict>;
}

/// Shared backend handle of the concrete engines: an `Arc`-shared
/// [`SharedExplorer`](cuba_explore::SharedExplorer) over the explicit
/// `(Rk)` or symbolic `(Sk)` layers, under one interface so each
/// algorithm is written once — and so any number of property checkers
/// can consume one exploration.
#[derive(Debug, Clone)]
pub(crate) struct Backend {
    shared: std::sync::Arc<cuba_explore::SharedExplorer>,
}

impl Backend {
    /// A handle over an existing (possibly suite-shared) explorer.
    pub(crate) fn new(shared: std::sync::Arc<cuba_explore::SharedExplorer>) -> Self {
        Backend { shared }
    }

    /// A private explicit explorer (unshared entry points).
    pub(crate) fn explicit(cpds: &Cpds, budget: cuba_explore::ExploreBudget) -> Self {
        Backend::new(std::sync::Arc::new(cuba_explore::SharedExplorer::explicit(
            cpds.clone(),
            budget,
        )))
    }

    /// A private symbolic explorer (unshared entry points).
    pub(crate) fn symbolic(
        cpds: &Cpds,
        budget: cuba_explore::ExploreBudget,
        mode: SubsumptionMode,
    ) -> Self {
        Backend::new(std::sync::Arc::new(cuba_explore::SharedExplorer::symbolic(
            cpds.clone(),
            budget,
            mode,
        )))
    }

    /// Makes layer `k` available under the caller's interrupt; `true`
    /// when this call computed at least one new layer (live round).
    pub(crate) fn ensure(
        &self,
        k: usize,
        interrupt: &Interrupt,
    ) -> Result<bool, cuba_explore::ExploreError> {
        self.shared.ensure_layer(k, interrupt)
    }

    /// The bound-indexed snapshot of layer `k`.
    pub(crate) fn view(&self, k: usize) -> cuba_explore::LayerView {
        self.shared.view(k)
    }

    /// The generators of `targets` *not* seen by bound `k` — the
    /// membership test `G∩Z ⊆ T(Rk)`, evaluated bound-indexed so it
    /// stays exact when the shared layers run deeper than `k`.
    pub(crate) fn missing_by(
        &self,
        targets: &[cuba_pds::VisibleState],
        k: usize,
    ) -> Vec<cuba_pds::VisibleState> {
        self.shared.with_store(|store| {
            targets
                .iter()
                .filter(|v| !store.seen_by(v, k))
                .cloned()
                .collect()
        })
    }

    pub(crate) fn is_symbolic(&self) -> bool {
        self.shared.is_symbolic()
    }

    /// Runs a closure over the explicit engine (witness
    /// reconstruction); `None` for symbolic backends.
    pub(crate) fn with_explicit<R>(
        &self,
        f: impl FnOnce(&cuba_explore::ExplicitEngine) -> R,
    ) -> Option<R> {
        self.shared.with_explicit(f)
    }

    /// Pointer identity of the shared explorer (the [`ArmView`]
    /// store key).
    ///
    /// [`ArmView`]: crate::ArmView
    pub(crate) fn store_key(&self) -> usize {
        std::sync::Arc::as_ptr(&self.shared) as usize
    }

    /// Deepest bound the explorer already holds.
    pub(crate) fn depth(&self) -> usize {
        self.shared.depth()
    }
}

/// The engine lineup vocabulary: which algorithm over which state
/// representation. A [`Portfolio`](crate::Portfolio) is described as a
/// list of kinds; [`build_engine`] instantiates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Algorithm 3 over `(T(Rk))` — explicit, needs FCR.
    Alg3Explicit,
    /// Scheme 1 over `(Rk)` — explicit, needs FCR.
    Scheme1Explicit,
    /// Algorithm 3 over `(T(Sk))` — symbolic, always applicable.
    Alg3Symbolic,
    /// Scheme 1 over `(Sk)` — symbolic, always applicable.
    Scheme1Symbolic,
    /// Context-bounded refuter (Qadeer–Rehof-style CBA): explores up
    /// to the session's round limit, can refute but never prove.
    CbaRefuter,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            EngineKind::Alg3Explicit => "alg3-explicit",
            EngineKind::Scheme1Explicit => "scheme1-explicit",
            EngineKind::Alg3Symbolic => "alg3-symbolic",
            EngineKind::Scheme1Symbolic => "scheme1-symbolic",
            EngineKind::CbaRefuter => "cba-refuter",
        };
        write!(f, "{name}")
    }
}

impl EngineKind {
    /// Whether the kind requires finite context reachability.
    pub fn needs_fcr(&self) -> bool {
        matches!(self, EngineKind::Alg3Explicit | EngineKind::Scheme1Explicit)
    }
}

/// Build parameters shared by every engine in a session.
#[derive(Debug, Clone)]
pub struct EngineParams {
    /// Exploration budget (its interrupt is the session's).
    pub budget: cuba_explore::ExploreBudget,
    /// Round limit per engine.
    pub max_k: usize,
    /// Subsumption mode for symbolic engines.
    pub subsumption: SubsumptionMode,
    /// Fuse the state-collapse test into Algorithm 3 arms
    /// (`use_state_collapse`). Sessions disable this when a dedicated
    /// Scheme 1 arm of the same representation runs alongside.
    pub fuse_collapse: bool,
    /// Skip the per-engine FCR pre-check (sessions check once).
    pub skip_fcr_check: bool,
    /// A precomputed `G ∩ Z` shared across sessions on the same
    /// system ([`SuiteCache`](crate::SuiteCache)); `None` lets each
    /// Algorithm 3 engine compute its own.
    pub g_cap_z: Option<std::sync::Arc<Vec<cuba_pds::VisibleState>>>,
    /// Per-system artifacts holding the *shared explorers*: when set,
    /// engines of matching backend borrow the system's layered
    /// exploration instead of starting their own — the "one system,
    /// many properties" hinge. `None` gives every engine a private
    /// explorer (the pre-sharing behavior).
    pub artifacts: Option<std::sync::Arc<crate::SystemArtifacts>>,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            budget: cuba_explore::ExploreBudget::default(),
            max_k: 64,
            subsumption: SubsumptionMode::Exact,
            fuse_collapse: true,
            skip_fcr_check: false,
            g_cap_z: None,
            artifacts: None,
        }
    }
}

/// Instantiates an engine of the given kind for a problem.
///
/// # Errors
///
/// [`CubaError::FcrRequired`] when an explicit kind is requested for a
/// system without FCR (and the pre-check is not skipped).
pub fn build_engine(
    kind: EngineKind,
    cpds: &Cpds,
    property: &crate::Property,
    params: &EngineParams,
) -> Result<Box<dyn Engine>, CubaError> {
    let alg3 = || Alg3Config {
        budget: params.budget.clone(),
        max_k: params.max_k,
        skip_fcr_check: params.skip_fcr_check,
        subsumption: params.subsumption,
        use_state_collapse: params.fuse_collapse,
        g_cap_z: params.g_cap_z.clone(),
    };
    let scheme1 = || Scheme1Config {
        budget: params.budget.clone(),
        max_k: params.max_k,
        skip_fcr_check: params.skip_fcr_check,
        subsumption: params.subsumption,
    };
    // With artifacts in play every engine of a backend borrows the
    // system's shared explorer; without, each engine explores alone.
    let explicit_backend = || match &params.artifacts {
        Some(artifacts) => Backend::new(artifacts.explicit_explorer(cpds, &params.budget)),
        None => Backend::explicit(cpds, params.budget.clone()),
    };
    let symbolic_backend = || match &params.artifacts {
        Some(artifacts) => {
            Backend::new(artifacts.symbolic_explorer(cpds, &params.budget, params.subsumption))
        }
        None => Backend::symbolic(cpds, params.budget.clone(), params.subsumption),
    };
    Ok(match kind {
        EngineKind::Alg3Explicit => Box::new(Alg3Engine::explicit_with(
            cpds,
            property,
            &alg3(),
            explicit_backend,
        )?),
        EngineKind::Scheme1Explicit => Box::new(Scheme1Engine::explicit_with(
            cpds,
            property,
            &scheme1(),
            explicit_backend,
        )?),
        EngineKind::Alg3Symbolic => Box::new(Alg3Engine::symbolic_with(
            cpds,
            property,
            &alg3(),
            symbolic_backend(),
        )),
        EngineKind::Scheme1Symbolic => Box::new(Scheme1Engine::symbolic_with(
            cpds,
            property,
            &scheme1(),
            symbolic_backend(),
        )),
        EngineKind::CbaRefuter => Box::new(CbaEngine::new(
            cpds,
            property,
            &CbaConfig {
                k: params.max_k,
                budget: params.budget.clone(),
            },
        )),
    })
}
