//! Shared constructions of the paper's running examples for unit
//! tests (the benchmark crate re-builds them for public consumption).

use cuba_pds::{Cpds, CpdsBuilder, PdsBuilder, SharedState, StackSym};

fn q(n: u32) -> SharedState {
    SharedState(n)
}
fn s(n: u32) -> StackSym {
    StackSym(n)
}

/// The two-thread CPDS of Fig. 1.
pub fn fig1() -> Cpds {
    let mut p1 = PdsBuilder::new(4, 3);
    p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
    p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
    let mut p2 = PdsBuilder::new(4, 7);
    p2.pop(q(0), s(4), q(0)).unwrap();
    p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
    p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
    CpdsBuilder::new(4, q(0))
        .thread(p1.build().unwrap(), [s(1)])
        .thread(p2.build().unwrap(), [s(4)])
        .build()
        .unwrap()
}

/// The foo/bar CPDS of Fig. 2 (violates FCR).
/// Q = {⊥,0,1} encoded as {0,1,2}; Σ1 = {2,3,4,5}, Σ2 = {6,7,8,9}.
pub fn fig2() -> Cpds {
    let (bot, x0, x1) = (q(0), q(1), q(2));
    let mut p1 = PdsBuilder::new(3, 6);
    p1.overwrite(bot, s(2), x0, s(2)).unwrap(); // f0
    p1.overwrite(bot, s(2), x1, s(2)).unwrap();
    for x in [x0, x1] {
        p1.overwrite(x, s(2), x, s(3)).unwrap(); // f2a
        p1.overwrite(x, s(2), x, s(4)).unwrap(); // f2b
        p1.push(x, s(3), x, s(2), s(4)).unwrap(); // f3
        p1.pop(x, s(5), x1).unwrap(); // f5
    }
    p1.overwrite(x1, s(4), x1, s(4)).unwrap(); // f4a
    p1.overwrite(x0, s(4), x0, s(5)).unwrap(); // f4b
    let mut p2 = PdsBuilder::new(3, 10);
    p2.overwrite(bot, s(6), x0, s(6)).unwrap(); // b0
    p2.overwrite(bot, s(6), x1, s(6)).unwrap();
    for x in [x0, x1] {
        p2.overwrite(x, s(6), x, s(7)).unwrap(); // b6a
        p2.overwrite(x, s(6), x, s(8)).unwrap(); // b6b
        p2.push(x, s(7), x, s(6), s(8)).unwrap(); // b7
        p2.pop(x, s(9), x0).unwrap(); // b9
    }
    p2.overwrite(x0, s(8), x0, s(8)).unwrap(); // b8a
    p2.overwrite(x1, s(8), x1, s(9)).unwrap(); // b8b
    CpdsBuilder::new(3, bot)
        .thread(p1.build().unwrap(), [s(2)])
        .thread(p2.build().unwrap(), [s(6)])
        .build()
        .unwrap()
}
