//! A directory of layer-store snapshots keyed by system fingerprint —
//! the persistence layer behind `cuba serve --state-dir` and the
//! spill half of the broker's `max_systems` handling.
//!
//! One system owns up to three files in the directory, one per
//! explorer backend that has actually been started:
//!
//! ```text
//! {fingerprint:016x}.explicit.cubasnap
//! {fingerprint:016x}.symbolic-exact.cubasnap
//! {fingerprint:016x}.symbolic-pointwise.cubasnap
//! ```
//!
//! Each file is the self-describing binary format of
//! [`cuba_explore::snapshot`]: a magic/version/fingerprint/checksum
//! header followed by the system's structural identity and the full
//! layer record, so a load verifies the file belongs to the live
//! [`Cpds`] before any layer is trusted (the same collision discipline
//! as [`SuiteCache`](crate::SuiteCache) lookups). Writes are atomic
//! (temp file + rename), so a crash mid-save leaves either the old
//! snapshot or none — never a torn file.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cuba_explore::{ExploreBudget, SharedExplorer, SnapshotKind};
use cuba_pds::Cpds;

use crate::cache::{fingerprint, sanitized, SystemArtifacts};

/// A snapshot directory: save whole systems, load them lazily.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(SnapshotStore { dir })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a `(fingerprint, backend)` pair lives at.
    pub fn path_for(&self, fingerprint: u64, kind: SnapshotKind) -> PathBuf {
        self.dir
            .join(format!("{fingerprint:016x}.{}.cubasnap", kind.label()))
    }

    /// Whether any backend of the fingerprinted system is on disk.
    pub fn contains(&self, fingerprint: u64) -> bool {
        SnapshotKind::all()
            .iter()
            .any(|kind| self.path_for(fingerprint, *kind).exists())
    }

    /// Writes one snapshot file per *started* explorer of `cpds`, and
    /// returns how many files were written. Explorers that were never
    /// demanded leave no file behind; stale files from an earlier,
    /// deeper run are simply overwritten.
    pub fn save(&self, cpds: &Cpds, artifacts: &SystemArtifacts) -> Result<usize, String> {
        let fp = fingerprint(cpds);
        let mut written = 0;
        for kind in SnapshotKind::all() {
            let Some(explorer) = artifacts.explorer_if_started(kind) else {
                continue;
            };
            let mut span = cuba_telemetry::trace::span_args(
                "snapshot-save",
                vec![("backend", kind.label().into())],
            );
            let bytes = explorer.snapshot(fp);
            span.arg("bytes", bytes.len());
            write_atomic(&self.path_for(fp, kind), &bytes)?;
            cuba_telemetry::metrics::METRICS.snapshot_saves.inc();
            written += 1;
        }
        Ok(written)
    }

    /// Seeds every *unstarted* explorer slot of `artifacts` from disk,
    /// and returns how many were restored. Missing files are fine
    /// (that backend starts cold); a file that exists but fails
    /// verification is an error naming the path. Slots a live
    /// exploration already claimed are left alone — live layers always
    /// win over a disk copy.
    pub fn load(
        &self,
        cpds: &Cpds,
        artifacts: &SystemArtifacts,
        budget: &ExploreBudget,
    ) -> Result<usize, String> {
        let fp = fingerprint(cpds);
        let mut loaded = 0;
        for kind in SnapshotKind::all() {
            if artifacts.explorer_if_started(kind).is_some() {
                continue;
            }
            let path = self.path_for(fp, kind);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(format!("{}: {e}", path.display())),
            };
            let mut span = cuba_telemetry::trace::span_args(
                "snapshot-load",
                vec![("backend", kind.label().into())],
            );
            span.arg("bytes", bytes.len());
            let explorer = SharedExplorer::restore(cpds.clone(), sanitized(budget), fp, &bytes)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            if artifacts.seed_explorer(kind, Arc::new(explorer)) {
                cuba_telemetry::metrics::METRICS.snapshot_loads.inc();
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

/// Writes `bytes` to `path` via a sibling temp file and a rename, so
/// readers only ever observe complete snapshots.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};

    /// A unique, cleaned-on-drop scratch directory (no tempdir crate).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir =
                std::env::temp_dir().join(format!("cuba-snapstore-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn explored_artifacts(cpds: &Cpds, depth: usize) -> Arc<SystemArtifacts> {
        let artifacts = Arc::new(SystemArtifacts::new());
        let explorer = artifacts.explicit_explorer(cpds, &ExploreBudget::default());
        explorer
            .ensure_layer(depth, &cuba_explore::Interrupt::none())
            .expect("exploration in budget");
        artifacts
    }

    /// Save writes one file per started backend; load on a fresh
    /// artifacts slab replays the layers with zero live rounds and a
    /// byte-identical re-snapshot.
    #[test]
    fn save_then_load_round_trips() {
        let scratch = Scratch::new("roundtrip");
        let store = SnapshotStore::open(&scratch.0).expect("open store");
        let cpds = fig1();
        let fp = fingerprint(&cpds);
        let budget = ExploreBudget::default();

        let artifacts = explored_artifacts(&cpds, 4);
        assert_eq!(store.save(&cpds, &artifacts).expect("save"), 1);
        assert!(store.contains(fp));
        assert!(store.path_for(fp, SnapshotKind::Explicit).exists());

        let warm = Arc::new(SystemArtifacts::new());
        assert_eq!(store.load(&cpds, &warm, &budget).expect("load"), 1);
        let restored = warm
            .explorer_if_started(SnapshotKind::Explicit)
            .expect("seeded");
        // Replaying the recorded bounds consumes no live rounds.
        for k in 0..=4 {
            assert_eq!(
                restored.ensure_layer(k, &cuba_explore::Interrupt::none()),
                Ok(false)
            );
        }
        assert_eq!(restored.rounds_explored(), 0);
        assert_eq!(restored.snapshot(fp), {
            let live = artifacts
                .explorer_if_started(SnapshotKind::Explicit)
                .expect("started");
            live.snapshot(fp)
        });

        // A second load is a no-op: the slot is already started.
        assert_eq!(store.load(&cpds, &warm, &budget).expect("reload"), 0);
    }

    /// Loading a different system's directory entry never seeds
    /// anything, and a corrupt file is rejected with the path named.
    #[test]
    fn load_is_safe_against_misses_and_corruption() {
        let scratch = Scratch::new("corrupt");
        let store = SnapshotStore::open(&scratch.0).expect("open store");
        let cpds = fig1();
        let budget = ExploreBudget::default();

        // Nothing on disk: load is a clean zero.
        let warm = Arc::new(SystemArtifacts::new());
        assert_eq!(store.load(&cpds, &warm, &budget).expect("empty load"), 0);
        assert!(!store.contains(fingerprint(&cpds)));

        // fig1's snapshot does not hydrate fig2 (different fingerprint
        // means a different file name — nothing is even read).
        store
            .save(&cpds, &explored_artifacts(&cpds, 3))
            .expect("save fig1");
        assert!(!store.contains(fingerprint(&fig2())));
        assert_eq!(
            store
                .load(&fig2(), &Arc::new(SystemArtifacts::new()), &budget)
                .expect("load other system"),
            0
        );

        // Truncating fig1's file turns its load into a path-named error.
        let path = store.path_for(fingerprint(&cpds), SnapshotKind::Explicit);
        let bytes = std::fs::read(&path).expect("read snapshot");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = store
            .load(&cpds, &Arc::new(SystemArtifacts::new()), &budget)
            .expect_err("corrupt file rejected");
        assert!(err.contains("cubasnap"), "error names the file: {err}");
    }
}
