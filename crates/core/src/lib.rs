//! The CUBA verification algorithms (Liu & Wahl, PLDI 2018).
//!
//! Context-unbounded reachability for concurrent pushdown systems is
//! undecidable; CUBA is a *partial* method that can both refute and
//! prove safety by watching how the sets of reachable states evolve as
//! the permitted number of thread contexts `k` grows — the
//! *observation sequence* paradigm (§3):
//!
//! * [`scheme1_explicit`] runs Scheme 1 over the stutter-free sequence
//!   `(Rk)`: a plateau is a collapse (Lemma 7). Needs finite context
//!   reachability ([`check_fcr`], §5).
//! * [`scheme1_symbolic`] is the same over PSA-backed symbolic state
//!   sets, so it also covers programs without FCR (Ex. 8).
//! * [`alg3_explicit`] / [`alg3_symbolic`] run Algorithm 3 over the
//!   finite-domain sequence `(T(Rk))` of *visible* states, separating
//!   stuttering from convergence with *generator sets* (Def. 10,
//!   Thm. 11) intersected with the context-insensitive
//!   overapproximation `Z` (Alg. 2, Lemma 12).
//! * [`Portfolio`] / [`AnalysisSession`] implement the top-level
//!   procedure of §6 as a *race of engines*: under FCR the explicit
//!   arms run alongside a context-bounded refuter, otherwise the
//!   symbolic arms race — streaming per-round [`SessionEvent`]s (with
//!   per-round cost accounting), with cooperative cancellation and
//!   wall-clock deadlines. Turns are distributed by a pluggable
//!   [`SchedulePolicy`] (cost-aware by default); batches share
//!   per-system artifacts through a [`SuiteCache`]. Exploration is
//!   decoupled from property checking: the layers `(Rk)`/`(Sk)` live
//!   in shared, demand-driven explorers
//!   ([`SharedExplorer`](cuba_explore::SharedExplorer), held by
//!   [`SystemArtifacts`]), so any number of properties of one system
//!   replay a single saturation and only deeper bounds are computed
//!   live ("one system, many properties").
//! * [`Cuba`] is a thin blocking wrapper over a session, kept for
//!   compatibility.
//! * [`cba_baseline`] is plain context-bounded analysis (Qadeer–Rehof
//!   style, bug-finding only) — the JMoped-shaped comparator of
//!   Fig. 5, and the refuter arm of the default portfolio.
//!
//! # Example
//!
//! Prove the Fig. 1 system safe for *any* number of contexts, watching
//! the observation sequence round by round:
//!
//! ```
//! use cuba_core::{Portfolio, Property, SessionEvent, Verdict};
//! use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym, VisibleState};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = |n| SharedState(n);
//! let s = |n| StackSym(n);
//! let mut p1 = PdsBuilder::new(4, 3);
//! p1.overwrite(q(0), s(1), q(1), s(2))?;
//! p1.overwrite(q(3), s(2), q(0), s(1))?;
//! let mut p2 = PdsBuilder::new(4, 7);
//! p2.pop(q(0), s(4), q(0))?;
//! p2.overwrite(q(1), s(4), q(2), s(5))?;
//! p2.push(q(2), s(5), q(3), s(4), s(6))?;
//! let cpds = CpdsBuilder::new(4, q(0))
//!     .thread(p1.build()?, [s(1)])
//!     .thread(p2.build()?, [s(4)])
//!     .build()?;
//!
//! // ⟨2|1,5⟩ is never reachable; the §6 race proves it at k = 5.
//! let target = VisibleState::new(q(2), vec![Some(s(1)), Some(s(5))]);
//! let property = Property::never_visible(target);
//!
//! // Stream the race: one RoundCompleted per engine per bound.
//! let mut session = Portfolio::auto().session(cpds, property)?;
//! let mut rounds = 0;
//! for event in &mut session {
//!     if let SessionEvent::RoundCompleted { .. } = event {
//!         rounds += 1;
//!     }
//! }
//! let outcome = session.into_outcome()?;
//! assert!(matches!(outcome.verdict, Verdict::Safe { k: 5, .. }));
//! assert!(rounds >= 7); // the winning arm computed bounds 0..=6
//! # Ok(())
//! # }
//! ```
//!
//! Sessions take a [`SessionConfig`] with a wall-clock `timeout` and a
//! [`CancelToken`](cuba_explore::CancelToken), both honored *inside*
//! long rounds; [`Portfolio::run_suite`] verifies a batch of problems
//! with bounded parallelism.
//!
//! # Migration note
//!
//! The pre-session entry points remain and behave identically — they
//! now delegate to the [`Engine`] round-steppers:
//!
//! * [`alg3_explicit`]/[`alg3_symbolic`] drive an [`Alg3Engine`],
//! * [`scheme1_explicit`]/[`scheme1_symbolic`] a [`Scheme1Engine`],
//! * [`cba_baseline`] a [`CbaEngine`],
//! * [`Cuba::run`] opens a single-problem [`AnalysisSession`] (one
//!   fused explicit arm, or the two-thread race with
//!   `parallel: true`).
//!
//! New code that wants streaming, cancellation, deadlines, custom
//! lineups, or batch verification should use [`Portfolio`] and
//! [`AnalysisSession`] directly.

mod alg3;
mod cache;
mod cba_baseline;
mod driver;
mod engine;
mod error;
mod events;
mod fcr;
mod generator;
mod overapprox;
mod portfolio;
mod profile_map;
mod property;
mod schedule;
mod scheme1;
mod sequence;
mod session;
mod snapshot_store;
#[cfg(test)]
mod testutil;

pub use alg3::{alg3_explicit, alg3_symbolic, Alg3Config, Alg3Engine, Alg3Report};
pub use cache::{fingerprint, same_system, CacheEntry, CacheStats, SuiteCache, SystemArtifacts};
pub use cba_baseline::{cba_baseline, CbaConfig, CbaEngine, CbaReport, CbaVerdict};
pub use driver::{Cuba, CubaConfig, CubaOutcome, DriverMode, EngineUsed, StageTimes};
pub use engine::{
    build_engine, Applicability, Engine, EngineKind, EngineParams, RoundCtx, RoundInfo,
    RoundOutcome,
};
pub use error::CubaError;
pub use events::SessionEvent;
pub use fcr::{check_fcr, fcr_checks_performed, fcr_psa, FcrReport};
pub use generator::GeneratorSet;
pub use overapprox::{compute_z, thread_abstraction, AbstractTransition, ZReport};
pub use portfolio::{Lineup, Portfolio};
pub use profile_map::{
    LearnedProfile, ProbeGuard, ProbeRecord, ProfileMap, ProfileMapStats, PROFILE_MAP_VERSION,
};
pub use property::Property;
pub use schedule::{
    ArmView, FrontierAwareScheduler, FrontierConfig, NamedProfile, RoundRobinScheduler,
    SchedulePolicy, Scheduler,
};
pub use scheme1::{
    scheme1_explicit, scheme1_symbolic, Scheme1Config, Scheme1Engine, Scheme1Report,
};
pub use sequence::{GrowthLog, SequenceEvent};
pub use session::{AnalysisSession, SessionConfig};
pub use snapshot_store::SnapshotStore;

/// The answer of a CUBA analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for *every* context bound: the observation
    /// sequence converged at bound `k` with no violation observed.
    Safe {
        /// The collapse bound `kmax` (Table 2's `kmax` columns).
        k: usize,
        /// Which convergence rule fired.
        method: ConvergenceMethod,
    },
    /// The property is violated within `k` contexts.
    Unsafe {
        /// The context bound revealing the bug (the parenthesized
        /// numbers in Table 2).
        k: usize,
        /// A replayable counterexample, when the engine tracks paths.
        witness: Option<cuba_explore::Witness>,
    },
    /// Neither a violation nor convergence within the round limit.
    Undetermined {
        /// Human-readable reason (round limit, budget, …).
        reason: String,
    },
}

impl Verdict {
    /// Whether this verdict proves the property.
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe { .. })
    }

    /// Whether this verdict refutes the property.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Safe { k, method } => {
                write!(
                    f,
                    "safe for any resource amount (converged at k={k}, {method})"
                )
            }
            Verdict::Unsafe { k, .. } => {
                write!(f, "error reachable with resource amount {k}")
            }
            Verdict::Undetermined { reason } => write!(f, "undetermined: {reason}"),
        }
    }
}

/// Which rule concluded convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceMethod {
    /// `Rk = Rk+1` (Scheme 1 over the stutter-free `(Rk)`, Lemma 7).
    RkCollapse,
    /// Plateau of `T(Rk)` plus the generator test `G∩Z ⊆ T(Rk)`
    /// (Algorithm 3, Thm. 11).
    GeneratorTest,
    /// No new symbolic states in a round (`Sk+1` adds nothing), the
    /// symbolic analogue of `Rk = Rk+1`.
    SkCollapse,
}

impl std::fmt::Display for ConvergenceMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceMethod::RkCollapse => write!(f, "Rk collapse"),
            ConvergenceMethod::GeneratorTest => write!(f, "generator test"),
            ConvergenceMethod::SkCollapse => write!(f, "Sk collapse"),
        }
    }
}
