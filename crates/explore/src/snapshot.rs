//! A compact, versioned binary snapshot of one exploration.
//!
//! CUBA's layered sequences `(Rk)`/`(Sk)` are a function of the system
//! alone, and verdicts replay deterministically from them — so the
//! layer record plus the backend's state table is exactly the artifact
//! worth persisting: a process that loads it replays every saturated
//! bound for free and only pays for layers nobody has computed yet.
//! This module defines that wire format and the encode/decode halves
//! used by [`SharedExplorer::snapshot`] and
//! [`SharedExplorer::restore`].
//!
//! # Format
//!
//! Hand-rolled little-endian binary, in the spirit of the repo's other
//! hand-rolled emitters (JSON, profile maps): no external
//! serialization dependency, deterministic output, versioned header.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CUBASNAP"
//! 8       4     format version (this build writes 1)
//! 12      1     backend kind (0 explicit, 1 symbolic-exact, 2 symbolic-pointwise)
//! 13      8     CPDS fingerprint (caller-supplied, e.g. cuba_core::fingerprint)
//! 21      8     payload length in bytes
//! 29      8     FNV-1a 64 checksum of the payload
//! 37      …     payload
//! ```
//!
//! The payload has three sections: a canonical byte encoding of the
//! system's structure (the `same_system` discipline — byte equality of
//! canonical encodings is structural equality, so a fingerprint
//! collision cannot smuggle a wrong system past the loader), the
//! layer record (per-bound state ids and per-bound new visible
//! states; first-seen bounds, growth logs, and the collapse bound are
//! derived on load), and the backend's state table in discovery order.
//! Because engines are deterministic and every stored collection keeps
//! its discovery order, save → load → save is byte-identical.
//!
//! Decode errors are *offset-numbered* and never echo file content.
//!
//! [`SharedExplorer::snapshot`]: crate::SharedExplorer::snapshot
//! [`SharedExplorer::restore`]: crate::SharedExplorer::restore

use cuba_automata::CanonicalDfa;
use cuba_pds::{Cpds, GlobalState, Rhs, SharedState, Stack, StackSym, VisibleState};

use crate::{
    ExplicitEngine, ExploreBudget, LayerStore, SubsumptionMode, SymbolicEngine, SymbolicState,
};

/// The magic bytes a snapshot file starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CUBASNAP";

/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header size in bytes (magic + version + kind + fingerprint +
/// payload length + checksum).
const HEADER_LEN: usize = 8 + 4 + 1 + 8 + 8 + 8;

/// Which backend a snapshot records. Carried in the header so a loader
/// can route a file to the right engine (and the right artifact slot)
/// without parsing the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotKind {
    /// Explicit `(Rk)` layers.
    Explicit,
    /// Symbolic `(Sk)` layers with exact deduplication.
    SymbolicExact,
    /// Symbolic `(Sk)` layers with pointwise subsumption.
    SymbolicPointwise,
}

impl SnapshotKind {
    /// The header byte of this kind.
    pub fn code(self) -> u8 {
        match self {
            SnapshotKind::Explicit => 0,
            SnapshotKind::SymbolicExact => 1,
            SnapshotKind::SymbolicPointwise => 2,
        }
    }

    /// The kind a header byte denotes, if any.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(SnapshotKind::Explicit),
            1 => Some(SnapshotKind::SymbolicExact),
            2 => Some(SnapshotKind::SymbolicPointwise),
            _ => None,
        }
    }

    /// A stable lowercase label (file stems, JSON fields, logs).
    pub fn label(self) -> &'static str {
        match self {
            SnapshotKind::Explicit => "explicit",
            SnapshotKind::SymbolicExact => "symbolic-exact",
            SnapshotKind::SymbolicPointwise => "symbolic-pointwise",
        }
    }

    /// Every kind, in header-code order (directory scans).
    pub fn all() -> [SnapshotKind; 3] {
        [
            SnapshotKind::Explicit,
            SnapshotKind::SymbolicExact,
            SnapshotKind::SymbolicPointwise,
        ]
    }
}

impl std::fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Validates the fixed-size header of `bytes` and returns the backend
/// kind and fingerprint it records — without reading the payload, so
/// callers can route or reject a file cheaply.
///
/// # Errors
///
/// Offset-numbered messages for a truncated header, wrong magic, a
/// newer format version, or an unknown backend kind.
pub fn peek_header(bytes: &[u8]) -> Result<(SnapshotKind, u64), String> {
    if bytes.len() < HEADER_LEN {
        return Err("snapshot offset 0: truncated header".to_owned());
    }
    if bytes[0..8] != SNAPSHOT_MAGIC {
        return Err("snapshot offset 0: bad magic (not a cuba snapshot)".to_owned());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot offset 8: unsupported snapshot version (this build reads version {SNAPSHOT_VERSION})"
        ));
    }
    let kind = SnapshotKind::from_code(bytes[12])
        .ok_or_else(|| "snapshot offset 12: unknown backend kind".to_owned())?;
    let fingerprint = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
    Ok((kind, fingerprint))
}

/// FNV-1a 64 over the payload — the same cheap, dependency-free hash
/// family the rest of the workspace uses for non-cryptographic
/// integrity checks.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte sink for the payload.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over the whole file; `pos` is
/// the absolute file offset every error message reports.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn fail(&self, at: usize, msg: &str) -> String {
        format!("snapshot offset {at}: {msg}")
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(self.fail(self.pos, &format!("unexpected end of data in {what}")));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads an element count and rejects counts that could not
    /// possibly fit in the remaining bytes (`elem_size` is a lower
    /// bound per element), so a corrupt length cannot trigger a huge
    /// allocation before the data runs out.
    fn count(&mut self, elem_size: usize, what: &str) -> Result<usize, String> {
        let at = self.pos;
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if elem_size
            .checked_mul(n)
            .is_none_or(|total| total > remaining)
        {
            return Err(self.fail(at, &format!("implausible {what} count")));
        }
        Ok(n)
    }
}

/// Canonical byte encoding of a CPDS's structure: exactly the fields
/// `same_system` compares (shared-state space, initial shared state,
/// per-thread initial stacks and action tables — display names
/// excluded), in a fixed order. Byte equality of two encodings is
/// structural equality of the systems.
fn encode_identity(cpds: &Cpds) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(cpds.num_shared());
    w.u32(cpds.q_init().0);
    w.u32(cpds.num_threads() as u32);
    for i in 0..cpds.num_threads() {
        let stack = cpds.initial_stack(i);
        w.u32(stack.len() as u32);
        for sym in stack.iter_top_down() {
            w.u32(sym.0);
        }
        let actions = cpds.thread(i).actions();
        w.u32(actions.len() as u32);
        for a in actions {
            w.u32(a.q.0);
            w.u32(a.top.map_or(u32::MAX, |s| s.0));
            w.u32(a.q_post.0);
            match &a.rhs {
                Rhs::Empty => w.u8(0),
                Rhs::One(s) => {
                    w.u8(1);
                    w.u32(s.0);
                }
                Rhs::Two { top, below } => {
                    w.u8(2);
                    w.u32(top.0);
                    w.u32(below.0);
                }
            }
        }
    }
    w.buf
}

/// Frames `payload` with the versioned header.
fn frame(kind: SnapshotKind, fingerprint: u64, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.push(kind.code());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes the identity and layer-record sections (common prefix of
/// both backends' payloads).
fn encode_common(w: &mut Writer, cpds: &Cpds, store: &LayerStore) {
    let identity = encode_identity(cpds);
    w.u32(identity.len() as u32);
    w.buf.extend_from_slice(&identity);
    let num_layers = store.current_k() + 1;
    w.u32(num_layers as u32);
    for k in 0..num_layers {
        let ids = store.layer_ids(k);
        w.u32(ids.len() as u32);
        for &id in ids {
            w.u32(id);
        }
    }
    for k in 0..num_layers {
        let visible = store.visible_layer(k);
        w.u32(visible.len() as u32);
        for v in visible {
            w.u32(v.q.0);
            for top in &v.tops {
                w.u32(top.map_or(u32::MAX, |s| s.0));
            }
        }
    }
}

/// Serializes an explicit engine (backend kind 0).
pub(crate) fn encode_explicit(engine: &ExplicitEngine, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    encode_common(&mut w, engine.cpds(), engine.store());
    let states = engine.states();
    w.u32(states.len() as u32);
    for state in states {
        w.u32(state.q.0);
        for stack in &state.stacks {
            w.u32(stack.len() as u32);
            for sym in stack.iter_top_down() {
                w.u32(sym.0);
            }
        }
    }
    frame(SnapshotKind::Explicit, fingerprint, w.buf)
}

/// Serializes a symbolic engine (backend kind 1 or 2 by mode).
pub(crate) fn encode_symbolic(engine: &SymbolicEngine, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    encode_common(&mut w, engine.cpds(), engine.store());
    let states = engine.states();
    w.u32(states.len() as u32);
    for state in states {
        w.u32(state.q.0);
        for dfa in &state.stacks {
            w.u32(dfa.num_states());
            for &f in dfa.finals() {
                w.u8(u8::from(f));
            }
            w.u32(dfa.transitions().len() as u32);
            for &(src, sym, dst) in dfa.transitions() {
                w.u32(src);
                w.u32(sym);
                w.u32(dst);
            }
        }
    }
    let kind = match engine.mode() {
        SubsumptionMode::Exact => SnapshotKind::SymbolicExact,
        SubsumptionMode::Pointwise => SnapshotKind::SymbolicPointwise,
    };
    frame(kind, fingerprint, w.buf)
}

/// A decoded backend, ready to be wrapped by a
/// [`SharedExplorer`](crate::SharedExplorer).
#[derive(Debug)]
pub(crate) enum DecodedBackend {
    Explicit(Box<ExplicitEngine>),
    Symbolic(Box<SymbolicEngine>),
}

/// Reads one shared state, range-checked against the live system.
fn read_shared(r: &mut Reader<'_>, cpds: &Cpds, what: &str) -> Result<SharedState, String> {
    let at = r.pos;
    let q = r.u32(what)?;
    if q >= cpds.num_shared() {
        return Err(r.fail(at, &format!("out-of-range shared state in {what}")));
    }
    Ok(SharedState(q))
}

/// Reads one optional top-of-stack symbol (`u32::MAX` = ε),
/// range-checked against thread `i`'s alphabet.
fn read_top(
    r: &mut Reader<'_>,
    cpds: &Cpds,
    i: usize,
    what: &str,
) -> Result<Option<StackSym>, String> {
    let at = r.pos;
    let v = r.u32(what)?;
    if v == u32::MAX {
        return Ok(None);
    }
    if v >= cpds.thread(i).alphabet_size() {
        return Err(r.fail(at, &format!("out-of-range stack symbol in {what}")));
    }
    Ok(Some(StackSym(v)))
}

/// Parses and verifies a snapshot, rebuilding the recorded engine
/// against the live `cpds`/`budget`.
///
/// # Errors
///
/// Offset-numbered messages (never echoing content) for: header
/// damage, a different format version, a fingerprint or structural
/// mismatch with `cpds`, a checksum failure, truncation, trailing
/// bytes, or any internal inconsistency of the decoded tables.
pub(crate) fn decode(
    cpds: Cpds,
    budget: ExploreBudget,
    expected_fingerprint: u64,
    bytes: &[u8],
) -> Result<DecodedBackend, String> {
    let (kind, fingerprint) = peek_header(bytes)?;
    if fingerprint != expected_fingerprint {
        return Err(
            "snapshot offset 13: fingerprint mismatch (snapshot records a different system)"
                .to_owned(),
        );
    }
    let payload_len = u64::from_le_bytes(bytes[21..29].try_into().expect("8 bytes")) as usize;
    let actual_len = bytes.len() - HEADER_LEN;
    if actual_len < payload_len {
        return Err(format!(
            "snapshot offset {}: truncated payload",
            bytes.len()
        ));
    }
    if actual_len > payload_len {
        return Err(format!(
            "snapshot offset {}: trailing bytes after payload",
            HEADER_LEN + payload_len
        ));
    }
    let checksum = u64::from_le_bytes(bytes[29..37].try_into().expect("8 bytes"));
    if fnv1a(&bytes[HEADER_LEN..]) != checksum {
        return Err("snapshot offset 29: checksum mismatch (corrupt snapshot)".to_owned());
    }

    let mut r = Reader {
        buf: bytes,
        pos: HEADER_LEN,
    };

    // Section 1: structural identity. Byte-compare the stored encoding
    // against a re-encoding of the live system — the same collision
    // discipline the suite cache and profile map apply, so a matching
    // fingerprint alone is never trusted.
    let id_len = r.count(1, "identity section")?;
    let id_at = r.pos;
    let stored_identity = r.take(id_len, "identity section")?;
    if stored_identity != encode_identity(&cpds) {
        return Err(r.fail(
            id_at,
            "system structure mismatch (fingerprint collision or wrong model)",
        ));
    }

    // Section 2: the layer record.
    let layers_at = r.pos;
    let num_layers = r.count(4, "layer table")?;
    let mut layers: Vec<Vec<u32>> = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let n = r.count(4, "layer ids")?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(r.u32("layer ids")?);
        }
        layers.push(ids);
    }
    let per_visible = 4 + 4 * cpds.num_threads();
    let mut visible_layers: Vec<Vec<VisibleState>> = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let n = r.count(per_visible, "visible layer")?;
        let mut layer = Vec::with_capacity(n);
        for _ in 0..n {
            let q = read_shared(&mut r, &cpds, "visible layer")?;
            let mut tops = Vec::with_capacity(cpds.num_threads());
            for i in 0..cpds.num_threads() {
                tops.push(read_top(&mut r, &cpds, i, "visible layer")?);
            }
            layer.push(VisibleState::new(q, tops));
        }
        visible_layers.push(layer);
    }
    let store =
        LayerStore::from_parts(layers, visible_layers).map_err(|e| r.fail(layers_at, &e))?;

    // Section 3: the backend's state table, in discovery order.
    let states_at = r.pos;
    match kind {
        SnapshotKind::Explicit => {
            let n = r.count(4, "state table")?;
            let mut states = Vec::with_capacity(n);
            for _ in 0..n {
                let q = read_shared(&mut r, &cpds, "state table")?;
                let mut stacks = Vec::with_capacity(cpds.num_threads());
                for i in 0..cpds.num_threads() {
                    let depth = r.count(4, "stack word")?;
                    let alphabet = cpds.thread(i).alphabet_size();
                    let mut syms = Vec::with_capacity(depth);
                    for _ in 0..depth {
                        let at = r.pos;
                        let sym = r.u32("stack word")?;
                        if sym >= alphabet {
                            return Err(r.fail(at, "out-of-range stack symbol in stack word"));
                        }
                        syms.push(StackSym(sym));
                    }
                    stacks.push(Stack::from_top_down(syms));
                }
                states.push(GlobalState::new(q, stacks));
            }
            let engine = ExplicitEngine::from_parts(cpds, budget, states, store)
                .map_err(|e| format!("snapshot offset {states_at}: {e}"))?;
            Ok(DecodedBackend::Explicit(Box::new(engine)))
        }
        SnapshotKind::SymbolicExact | SnapshotKind::SymbolicPointwise => {
            let mode = match kind {
                SnapshotKind::SymbolicPointwise => SubsumptionMode::Pointwise,
                _ => SubsumptionMode::Exact,
            };
            let n = r.count(4, "state table")?;
            let mut states = Vec::with_capacity(n);
            for _ in 0..n {
                let q = read_shared(&mut r, &cpds, "state table")?;
                let mut stacks = Vec::with_capacity(cpds.num_threads());
                for i in 0..cpds.num_threads() {
                    let dfa_at = r.pos;
                    let dfa_states = r.count(1, "stack automaton")?;
                    let mut finals = Vec::with_capacity(dfa_states);
                    for _ in 0..dfa_states {
                        let at = r.pos;
                        match r.u8("stack automaton")? {
                            0 => finals.push(false),
                            1 => finals.push(true),
                            _ => return Err(r.fail(at, "bad final flag in stack automaton")),
                        }
                    }
                    let num_transitions = r.count(12, "stack automaton")?;
                    let alphabet = cpds.thread(i).alphabet_size();
                    let mut transitions = Vec::with_capacity(num_transitions);
                    for _ in 0..num_transitions {
                        let src = r.u32("stack automaton")?;
                        let at = r.pos;
                        let sym = r.u32("stack automaton")?;
                        if sym >= alphabet {
                            return Err(r.fail(at, "out-of-range stack symbol in stack automaton"));
                        }
                        let dst = r.u32("stack automaton")?;
                        transitions.push((src, sym, dst));
                    }
                    let dfa = CanonicalDfa::from_parts(dfa_states as u32, transitions, finals)
                        .map_err(|e| format!("snapshot offset {dfa_at}: {e}"))?;
                    stacks.push(dfa);
                }
                states.push(SymbolicState { q, stacks });
            }
            let engine = SymbolicEngine::from_parts(cpds, budget, mode, states, store)
                .map_err(|e| format!("snapshot offset {states_at}: {e}"))?;
            Ok(DecodedBackend::Symbolic(Box::new(engine)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    fn explicit_snapshot(k: usize) -> (Cpds, Vec<u8>) {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        for _ in 0..k {
            engine.advance().unwrap();
        }
        let bytes = encode_explicit(&engine, 42);
        (fig1(), bytes)
    }

    #[test]
    fn explicit_roundtrip_is_byte_identical() {
        let (cpds, bytes) = explicit_snapshot(4);
        let decoded = decode(cpds, ExploreBudget::default(), 42, &bytes).unwrap();
        let DecodedBackend::Explicit(engine) = decoded else {
            panic!("explicit snapshot decoded to the wrong backend");
        };
        assert_eq!(engine.current_k(), 4);
        assert_eq!(encode_explicit(&engine, 42), bytes);
    }

    #[test]
    fn symbolic_roundtrip_is_byte_identical() {
        let mut engine =
            SymbolicEngine::new(fig1(), ExploreBudget::default(), SubsumptionMode::Exact);
        for _ in 0..3 {
            engine.advance().unwrap();
        }
        let bytes = encode_symbolic(&engine, 7);
        assert_eq!(
            peek_header(&bytes).unwrap(),
            (SnapshotKind::SymbolicExact, 7)
        );
        let decoded = decode(fig1(), ExploreBudget::default(), 7, &bytes).unwrap();
        let DecodedBackend::Symbolic(restored) = decoded else {
            panic!("symbolic snapshot decoded to the wrong backend");
        };
        assert_eq!(restored.current_k(), 3);
        assert_eq!(restored.mode(), SubsumptionMode::Exact);
        assert_eq!(encode_symbolic(&restored, 7), bytes);
    }

    #[test]
    fn wrong_fingerprint_is_rejected() {
        let (cpds, bytes) = explicit_snapshot(2);
        let err = decode(cpds, ExploreBudget::default(), 43, &bytes).unwrap_err();
        assert!(err.contains("snapshot offset 13"), "{err}");
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn newer_version_is_rejected() {
        let (cpds, mut bytes) = explicit_snapshot(2);
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let err = decode(cpds, ExploreBudget::default(), 42, &bytes).unwrap_err();
        assert_eq!(
            err,
            "snapshot offset 8: unsupported snapshot version (this build reads version 1)"
        );
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let (cpds, mut bytes) = explicit_snapshot(2);
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        let err = decode(cpds, ExploreBudget::default(), 42, &bytes).unwrap_err();
        assert_eq!(
            err,
            "snapshot offset 29: checksum mismatch (corrupt snapshot)"
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let (cpds, bytes) = explicit_snapshot(2);
        let cut = &bytes[..bytes.len() - 5];
        let err = decode(cpds.clone(), ExploreBudget::default(), 42, cut).unwrap_err();
        assert!(err.contains("truncated payload"), "{err}");
        let mut padded = bytes.clone();
        padded.push(0);
        let err = decode(cpds.clone(), ExploreBudget::default(), 42, &padded).unwrap_err();
        assert!(err.contains("trailing bytes"), "{err}");
        let err = decode(cpds, ExploreBudget::default(), 42, &bytes[..10]).unwrap_err();
        assert_eq!(err, "snapshot offset 0: truncated header");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let (cpds, mut bytes) = explicit_snapshot(1);
        bytes[0] = b'X';
        let err = decode(cpds, ExploreBudget::default(), 42, &bytes).unwrap_err();
        assert_eq!(err, "snapshot offset 0: bad magic (not a cuba snapshot)");
    }

    #[test]
    fn structurally_different_system_is_rejected() {
        let (_, bytes) = explicit_snapshot(2);
        // Same fingerprint claimed, structurally different system.
        let mut p = PdsBuilder::new(4, 3);
        p.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        let other = CpdsBuilder::new(4, q(0))
            .thread(p.build().unwrap(), [s(1)])
            .build()
            .unwrap();
        let err = decode(other, ExploreBudget::default(), 42, &bytes).unwrap_err();
        assert!(err.contains("system structure mismatch"), "{err}");
    }

    #[test]
    fn errors_never_echo_content() {
        let (cpds, mut bytes) = explicit_snapshot(3);
        for tweak in [0usize, 8, 12, 13, 29, HEADER_LEN + 2] {
            let mut broken = bytes.clone();
            broken[tweak] ^= 0xff;
            if let Err(e) = decode(cpds.clone(), ExploreBudget::default(), 42, &broken) {
                assert!(e.starts_with("snapshot offset "), "{e}");
                assert!(!e.contains("CUBASNAP"), "{e}");
            }
        }
        bytes.truncate(20);
        let err = decode(cpds, ExploreBudget::default(), 42, &bytes).unwrap_err();
        assert!(err.starts_with("snapshot offset "), "{err}");
    }
}
