//! The property-independent layer store shared by both exploration
//! backends.
//!
//! CUBA's observation sequences (`(Rk)`, `(Sk)`, and their visible
//! projections) are a function of the *system* alone — a property only
//! inspects them. [`LayerStore`] is exactly that system-side record:
//! append-only layers of state ids, the per-bound *new* visible
//! states, the first-seen bound of every visible state, cumulative
//! growth logs, and collapse detection. [`ExplicitEngine`] and
//! [`SymbolicEngine`] both maintain one, which is what lets a
//! [`SharedExplorer`] replay already-computed bounds for any number of
//! property checkers.
//!
//! [`ExplicitEngine`]: crate::ExplicitEngine
//! [`SymbolicEngine`]: crate::SymbolicEngine
//! [`SharedExplorer`]: crate::SharedExplorer

use std::collections::HashMap;

use cuba_pds::VisibleState;

/// Append-only record of a layered exploration: which state ids were
/// first reached at each context bound, which visible states were
/// first seen there, cumulative sizes per bound, and where (if
/// anywhere) the sequence collapsed.
///
/// All queries are *bound-indexed*, so a checker replaying bound `k`
/// sees exactly the data a fresh engine would have produced at `k`,
/// even when the store has since been extended past `k`.
#[derive(Debug)]
pub struct LayerStore {
    /// `layers[k]` = ids of states first reached at context bound `k`.
    layers: Vec<Vec<u32>>,
    /// `visible_layers[k]` = visible states first seen at bound `k`.
    visible_layers: Vec<Vec<VisibleState>>,
    /// The bound at which each visible state was first seen.
    first_seen: HashMap<VisibleState, u32>,
    /// Cumulative stored states after each bound (the `|Rk|`/`|Sk|`
    /// growth log).
    state_counts: Vec<usize>,
    /// Cumulative visible states after each bound (the `|T(Rk)|`
    /// growth log).
    visible_counts: Vec<usize>,
    /// First bound whose layer came up empty (`Rk = Rk−1`), if any.
    collapsed_at: Option<usize>,
}

impl LayerStore {
    /// A store positioned at layer 0 = `{initial state}` (id 0) with
    /// the given visible projection.
    pub fn new(initial_visible: VisibleState) -> Self {
        let mut first_seen = HashMap::new();
        first_seen.insert(initial_visible.clone(), 0u32);
        LayerStore {
            layers: vec![vec![0]],
            visible_layers: vec![vec![initial_visible]],
            first_seen,
            state_counts: vec![1],
            visible_counts: vec![1],
            collapsed_at: None,
        }
    }

    /// The highest context bound recorded so far.
    pub fn current_k(&self) -> usize {
        self.layers.len() - 1
    }

    /// Ids of the states first reached at bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn layer_ids(&self, k: usize) -> &[u32] {
        &self.layers[k]
    }

    /// Visible states first seen at bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn visible_layer(&self, k: usize) -> &[VisibleState] {
        &self.visible_layers[k]
    }

    /// Number of distinct visible states seen so far (any bound).
    pub fn num_visible(&self) -> usize {
        self.first_seen.len()
    }

    /// Iterates over every visible state seen so far.
    pub fn visible_iter(&self) -> impl Iterator<Item = &VisibleState> + '_ {
        self.first_seen.keys()
    }

    /// Whether `v` has been seen at any computed bound.
    pub fn seen(&self, v: &VisibleState) -> bool {
        self.first_seen.contains_key(v)
    }

    /// Whether `v` was seen at bound `k` or earlier — the membership
    /// test `v ∈ T(Rk)` that stays correct after the store grows
    /// past `k`.
    pub fn seen_by(&self, v: &VisibleState, k: usize) -> bool {
        self.first_seen.get(v).is_some_and(|&b| b as usize <= k)
    }

    /// The bound at which `v` was first seen, if any.
    pub fn first_seen_bound(&self, v: &VisibleState) -> Option<usize> {
        self.first_seen.get(v).map(|&b| b as usize)
    }

    /// Cumulative stored states at bound `k` (`|Rk|` resp. `|Sk|`).
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn state_count_at(&self, k: usize) -> usize {
        self.state_counts[k]
    }

    /// Cumulative visible states at bound `k` (`|T(Rk)|`).
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn visible_count_at(&self, k: usize) -> usize {
        self.visible_counts[k]
    }

    /// Whether the sequence has collapsed at any computed bound.
    pub fn is_collapsed(&self) -> bool {
        self.collapsed_at.is_some()
    }

    /// The first bound whose layer was empty, if any.
    pub fn collapsed_at(&self) -> Option<usize> {
        self.collapsed_at
    }

    /// Whether the collapse had happened by bound `k` — what a checker
    /// replaying bound `k` observes as "this round added nothing".
    pub fn collapsed_by(&self, k: usize) -> bool {
        self.collapsed_at.is_some_and(|c| c <= k)
    }

    /// Records a visible state seen while computing the *next* layer.
    /// Returns `true` when it is new (the caller then owes it to the
    /// round's `new_visible` list, and back to
    /// [`rollback_round`](Self::rollback_round) on failure).
    pub fn record_visible(&mut self, v: VisibleState) -> bool {
        let bound = self.layers.len() as u32;
        match self.first_seen.entry(v) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(bound);
                true
            }
        }
    }

    /// Undoes the visible-state registrations of a failed round, so an
    /// interrupted `advance` leaves the store exactly as it was — the
    /// transactional guarantee a [`SharedExplorer`] needs to let one
    /// caller's deadline not poison the exploration for everyone else.
    ///
    /// [`SharedExplorer`]: crate::SharedExplorer
    pub fn rollback_round(&mut self, new_visible: &[VisibleState]) {
        for v in new_visible {
            self.first_seen.remove(v);
        }
    }

    /// Seals the freshly computed layer: the ids first reached at the
    /// new bound, the visible states first seen there, and the total
    /// stored states after the round. An empty id layer at `k ≥ 1`
    /// marks the collapse.
    pub fn push_layer(
        &mut self,
        ids: Vec<u32>,
        new_visible: Vec<VisibleState>,
        total_states: usize,
    ) {
        if ids.is_empty() && self.collapsed_at.is_none() {
            self.collapsed_at = Some(self.layers.len());
        }
        self.layers.push(ids);
        self.visible_layers.push(new_visible);
        self.state_counts.push(total_states);
        self.visible_counts.push(self.first_seen.len());
    }

    /// Rebuilds a store from its serialized essence: the per-bound id
    /// layers and per-bound new visible states. Everything else —
    /// first-seen bounds, cumulative growth logs, the collapse bound —
    /// is derived, which keeps the snapshot format minimal and makes
    /// save → load → save byte-identical by construction.
    ///
    /// Validated invariants (anything else means a corrupt snapshot):
    /// layer 0 is exactly `{0}`, ids are consecutive across bounds (an
    /// engine numbers states in discovery order), a visible state is
    /// first seen at exactly one bound, and an empty id layer brings
    /// no new visible states.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant, without
    /// echoing any state content.
    pub fn from_parts(
        layers: Vec<Vec<u32>>,
        visible_layers: Vec<Vec<VisibleState>>,
    ) -> Result<Self, String> {
        if layers.is_empty() || layers.len() != visible_layers.len() {
            return Err("layer table shape mismatch".to_owned());
        }
        if layers[0] != [0] || visible_layers[0].len() != 1 {
            return Err("layer 0 is not the singleton initial layer".to_owned());
        }
        let mut first_seen = HashMap::new();
        let mut state_counts = Vec::with_capacity(layers.len());
        let mut visible_counts = Vec::with_capacity(layers.len());
        let mut collapsed_at = None;
        let mut next_id = 0u32;
        for (k, (ids, new_visible)) in layers.iter().zip(&visible_layers).enumerate() {
            for &id in ids {
                if id != next_id {
                    return Err(format!("layer {k}: state ids are not consecutive"));
                }
                next_id = next_id
                    .checked_add(1)
                    .ok_or_else(|| format!("layer {k}: state id overflow"))?;
            }
            if ids.is_empty() {
                if !new_visible.is_empty() {
                    return Err(format!("layer {k}: empty layer with new visible states"));
                }
                if collapsed_at.is_none() {
                    collapsed_at = Some(k);
                }
            }
            for v in new_visible {
                if first_seen.insert(v.clone(), k as u32).is_some() {
                    return Err(format!("layer {k}: visible state first seen twice"));
                }
            }
            state_counts.push(next_id as usize);
            visible_counts.push(first_seen.len());
        }
        Ok(LayerStore {
            layers,
            visible_layers,
            first_seen,
            state_counts,
            visible_counts,
            collapsed_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{SharedState, StackSym};

    fn vis(q: u32, top: u32) -> VisibleState {
        VisibleState::new(SharedState(q), vec![Some(StackSym(top))])
    }

    #[test]
    fn bound_indexed_queries_survive_growth() {
        let mut store = LayerStore::new(vis(0, 1));
        assert!(store.record_visible(vis(1, 2)));
        assert!(!store.record_visible(vis(1, 2)), "duplicates rejected");
        store.push_layer(vec![1, 2], vec![vis(1, 2)], 3);
        store.push_layer(vec![3], vec![], 4);

        assert_eq!(store.current_k(), 2);
        assert_eq!(store.visible_count_at(0), 1);
        assert_eq!(store.visible_count_at(1), 2);
        assert_eq!(store.state_count_at(2), 4);
        assert!(store.seen_by(&vis(1, 2), 1));
        assert!(!store.seen_by(&vis(1, 2), 0));
        assert_eq!(store.first_seen_bound(&vis(0, 1)), Some(0));
        assert!(!store.is_collapsed());
    }

    #[test]
    fn empty_layer_is_the_collapse_and_sticks() {
        let mut store = LayerStore::new(vis(0, 1));
        store.push_layer(vec![1], vec![], 2);
        store.push_layer(Vec::new(), Vec::new(), 2);
        assert_eq!(store.collapsed_at(), Some(2));
        assert!(store.collapsed_by(2));
        assert!(!store.collapsed_by(1));
        // Padding layers past the collapse keep the original bound.
        store.push_layer(Vec::new(), Vec::new(), 2);
        assert_eq!(store.collapsed_at(), Some(2));
    }

    #[test]
    fn rollback_removes_round_registrations() {
        let mut store = LayerStore::new(vis(0, 1));
        assert!(store.record_visible(vis(2, 3)));
        store.rollback_round(&[vis(2, 3)]);
        assert!(!store.seen(&vis(2, 3)));
        assert_eq!(store.num_visible(), 1);
        // The next round can re-register it.
        assert!(store.record_visible(vis(2, 3)));
    }
}
