use std::collections::HashMap;

use cuba_automata::{language_subset, post_star_with, CanonicalDfa, Psa, RuleTable};
use cuba_pds::{Cpds, GlobalState, SharedState, StackSym, VisibleState};

use crate::{ExploreBudget, ExploreError, Interrupt, LayerStore};

/// A symbolic state `τ = ⟨q|A1,…,An⟩` (paper App. E): the current
/// shared state plus, per thread, a regular language of possible stack
/// contents, kept as a *canonical minimal DFA* so that language
/// equality is structural equality (and symbolic states are hashable).
///
/// Its concretization is
/// `γ(τ) = {⟨q|w1,…,wn⟩ : ∀i wi ∈ L(Ai)}` (Eq. 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymbolicState {
    /// The shared state `q`.
    pub q: SharedState,
    /// Per-thread stack languages (top-of-stack first).
    pub stacks: Vec<CanonicalDfa>,
}

impl SymbolicState {
    /// The symbolic state whose concretization is exactly `{state}`.
    pub fn singleton(state: &GlobalState) -> Self {
        SymbolicState {
            q: state.q,
            stacks: state
                .stacks
                .iter()
                .map(|s| {
                    let word: Vec<u32> = s.iter_top_down().map(|x| x.0).collect();
                    CanonicalDfa::single_word(&word)
                })
                .collect(),
        }
    }

    /// Whether `state ∈ γ(τ)`.
    pub fn contains(&self, state: &GlobalState) -> bool {
        if state.q != self.q || state.stacks.len() != self.stacks.len() {
            return false;
        }
        state.stacks.iter().zip(&self.stacks).all(|(w, a)| {
            let word: Vec<u32> = w.iter_top_down().map(|x| x.0).collect();
            a.accepts(&word)
        })
    }

    /// Whether `γ(self) ⊆ γ(other)` (pointwise language containment;
    /// used by the optional subsumption mode).
    pub fn subsumed_by(&self, other: &SymbolicState) -> bool {
        self.q == other.q
            && self.stacks.len() == other.stacks.len()
            && self
                .stacks
                .iter()
                .zip(&other.stacks)
                .all(|(a, b)| a == b || language_subset(&a.to_nfa(), &b.to_nfa()))
    }

    /// The visible-state projection `T(τ)` (Eq. 4, computed per thread
    /// by the paper's Alg. 4): the finite set
    /// `{q} × T(A1) × … × T(An)`.
    pub fn visible_states(&self) -> Vec<VisibleState> {
        let mut per_thread: Vec<Vec<Option<StackSym>>> = Vec::with_capacity(self.stacks.len());
        for a in &self.stacks {
            let (firsts, eps) = a.first_symbols();
            let mut tops: Vec<Option<StackSym>> = Vec::new();
            if eps {
                tops.push(None);
            }
            tops.extend(firsts.into_iter().map(|s| Some(StackSym(s))));
            if tops.is_empty() {
                // Empty stack language: γ(τ) is empty, no visible states.
                return Vec::new();
            }
            per_thread.push(tops);
        }
        let mut out = Vec::new();
        let mut tuple: Vec<Option<StackSym>> = vec![None; self.stacks.len()];
        fn rec(
            domains: &[Vec<Option<StackSym>>],
            i: usize,
            q: SharedState,
            tuple: &mut Vec<Option<StackSym>>,
            out: &mut Vec<VisibleState>,
        ) {
            if i == domains.len() {
                out.push(VisibleState::new(q, tuple.clone()));
                return;
            }
            for &choice in &domains[i] {
                tuple[i] = choice;
                rec(domains, i + 1, q, tuple, out);
            }
        }
        rec(&per_thread, 0, self.q, &mut tuple, &mut out);
        out
    }

    /// Whether `γ(τ)` is empty (some thread's stack language is empty).
    pub fn is_empty(&self) -> bool {
        self.stacks.iter().any(|a| a.is_empty_language())
    }
}

impl std::fmt::Display for SymbolicState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}|", self.q)?;
        for (i, a) in self.stacks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "dfa[{}]", a.num_states())?;
        }
        write!(f, ">")
    }
}

/// How the symbolic engine deduplicates newly produced symbolic states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsumptionMode {
    /// Keep a state unless an *identical* (canonical) state exists.
    /// Cheap; plateau detection means `Sk+1 = Sk` exactly.
    #[default]
    Exact,
    /// Additionally drop states pointwise subsumed by an existing state
    /// (`γ(new) ⊆ γ(old)`). More work per state, earlier convergence —
    /// this is the ablation §8 alludes to ("symbolic representations …
    /// make convergence detection more difficult").
    Pointwise,
}

/// Summary of one symbolic round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicLayerSummary {
    /// The context bound of the new layer.
    pub k: usize,
    /// Symbolic states new at this bound.
    pub new_symbolic: usize,
    /// Visible states new at this bound.
    pub new_visible: usize,
}

/// Symbolic layered exploration of `S0, S1, …` with PSA-based context
/// steps (the paper's third approach, Alg. 3(T(Sk)), App. E).
///
/// One context of thread `i` from `τ = ⟨q|A1,…,An⟩`:
///
/// 1. build the P-automaton accepting `{⟨q|w⟩ : w ∈ L(Ai)}`,
/// 2. saturate with `post*` over `Δi`,
/// 3. for every shared state `q'` with non-empty stack language,
///    emit `⟨q'|A1,…,post*|q',…,An⟩` — the other threads' stacks are
///    unchanged, merely re-associated with the new shared state.
///
/// Collapse (`no new symbolic states in a round`) soundly implies
/// `Rk+1 ⊆ Rk` and hence, by Lemma 7, convergence of `(Rk)`.
#[derive(Debug)]
pub struct SymbolicEngine {
    cpds: Cpds,
    budget: ExploreBudget,
    mode: SubsumptionMode,
    states: Vec<SymbolicState>,
    index: HashMap<SymbolicState, u32>,
    /// Ids grouped by shared state, for pointwise subsumption lookups.
    by_shared: HashMap<SharedState, Vec<u32>>,
    /// The property-independent layer record (shared vocabulary with
    /// the explicit engine; see [`LayerStore`]).
    store: LayerStore,
    /// One CSR rule index per thread-PDS, built once at construction
    /// and shared by every saturation (previously the equivalent hash
    /// index was rebuilt on every context step).
    tables: Vec<RuleTable>,
}

impl SymbolicEngine {
    /// Creates an engine positioned at `S0 = {singleton(initial)}`.
    pub fn new(cpds: Cpds, budget: ExploreBudget, mode: SubsumptionMode) -> Self {
        let init = SymbolicState::singleton(&cpds.initial_state());
        let visible = cpds.initial_state().visible();
        let mut index = HashMap::new();
        index.insert(init.clone(), 0u32);
        let mut by_shared: HashMap<SharedState, Vec<u32>> = HashMap::new();
        by_shared.insert(init.q, vec![0]);
        let tables = (0..cpds.num_threads())
            .map(|i| RuleTable::new(cpds.thread(i)))
            .collect();
        SymbolicEngine {
            cpds,
            budget,
            mode,
            states: vec![init],
            index,
            by_shared,
            store: LayerStore::new(visible),
            tables,
        }
    }

    /// Rebuilds an engine from deserialized parts: the symbolic-state
    /// table in discovery order plus an already-validated layer record.
    /// The lookup index, per-shared-state grouping, and CSR rule
    /// tables are derived, so a restored engine is indistinguishable
    /// from one that explored the same layers live.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency between the
    /// state table and the layer record, without echoing state content.
    pub(crate) fn from_parts(
        cpds: Cpds,
        budget: ExploreBudget,
        mode: SubsumptionMode,
        states: Vec<SymbolicState>,
        store: LayerStore,
    ) -> Result<Self, String> {
        if states.len() != store.state_count_at(store.current_k()) {
            return Err("state table does not match the layer record".to_owned());
        }
        if states[0] != SymbolicState::singleton(&cpds.initial_state()) {
            return Err("state 0 is not the initial symbolic state".to_owned());
        }
        let mut index = HashMap::with_capacity(states.len());
        let mut by_shared: HashMap<SharedState, Vec<u32>> = HashMap::new();
        for (id, state) in states.iter().enumerate() {
            if index.insert(state.clone(), id as u32).is_some() {
                return Err("duplicate symbolic state in state table".to_owned());
            }
            by_shared.entry(state.q).or_default().push(id as u32);
        }
        let tables = (0..cpds.num_threads())
            .map(|i| RuleTable::new(cpds.thread(i)))
            .collect();
        Ok(SymbolicEngine {
            cpds,
            budget,
            mode,
            states,
            index,
            by_shared,
            store,
            tables,
        })
    }

    /// The subsumption mode the engine deduplicates with.
    pub fn mode(&self) -> SubsumptionMode {
        self.mode
    }

    /// The stored symbolic states in discovery order (serialization).
    pub(crate) fn states(&self) -> &[SymbolicState] {
        &self.states
    }

    /// The CPDS being explored.
    pub fn cpds(&self) -> &Cpds {
        &self.cpds
    }

    /// The highest context bound computed so far.
    pub fn current_k(&self) -> usize {
        self.store.current_k()
    }

    /// Whether a round added no symbolic states (so `Rk` collapsed).
    pub fn is_collapsed(&self) -> bool {
        self.store.is_collapsed()
    }

    /// The bound-indexed layer record.
    pub fn store(&self) -> &LayerStore {
        &self.store
    }

    /// Replaces the interrupt wiring of the engine's budget (a
    /// [`SharedExplorer`](crate::SharedExplorer) installs each caller's
    /// interrupt for the duration of its request).
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.budget.interrupt = interrupt;
    }

    /// Total number of symbolic states stored.
    pub fn num_symbolic_states(&self) -> usize {
        self.states.len()
    }

    /// Symbolic states first produced at context bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn layer(&self, k: usize) -> impl Iterator<Item = &SymbolicState> + '_ {
        self.store
            .layer_ids(k)
            .iter()
            .map(|&id| &self.states[id as usize])
    }

    /// Visible states first seen at context bound `k`
    /// (`T(Sk) \ T(Sk−1)`).
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn visible_layer(&self, k: usize) -> &[VisibleState] {
        self.store.visible_layer(k)
    }

    /// All visible states seen so far (`T(Sk)` at the current bound).
    pub fn visible_total(&self) -> impl Iterator<Item = &VisibleState> + '_ {
        self.store.visible_iter()
    }

    /// Number of visible states seen so far.
    pub fn num_visible(&self) -> usize {
        self.store.num_visible()
    }

    /// Whether a concrete global state is covered by any stored
    /// symbolic state (i.e. is context-bounded reachable at the
    /// current bound). Used in cross-validation tests.
    pub fn covers(&self, state: &GlobalState) -> bool {
        self.states.iter().any(|s| s.contains(state))
    }

    /// Computes the next layer `Sk+1 \ Sk`.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::SymbolicBudgetExceeded`] when the
    /// symbolic state budget is exhausted — the analogue of the
    /// paper's out-of-memory outcome on Stefan-1 with 8 threads.
    pub fn advance(&mut self) -> Result<SymbolicLayerSummary, ExploreError> {
        self.budget.interrupt.check()?;
        let k = self.store.current_k() + 1;
        if self.store.is_collapsed() {
            self.store
                .push_layer(Vec::new(), Vec::new(), self.states.len());
            return Ok(SymbolicLayerSummary {
                k,
                new_symbolic: 0,
                new_visible: 0,
            });
        }
        let frontier: Vec<u32> = self.store.layer_ids(k - 1).to_vec();
        let round_start = self.states.len() as u32;
        let mut new_layer: Vec<u32> = Vec::new();
        let mut new_visible: Vec<VisibleState> = Vec::new();

        for &tau_id in &frontier {
            for thread in 0..self.cpds.num_threads() {
                let step = self
                    .budget
                    .interrupt
                    .check()
                    .and_then(|()| self.context_post(tau_id, thread))
                    .and_then(|successors| {
                        for tau2 in successors {
                            self.register(tau2, &mut new_layer, &mut new_visible)?;
                        }
                        Ok(())
                    });
                if let Err(e) = step {
                    self.rollback(round_start, &new_visible);
                    return Err(e);
                }
            }
        }

        let summary = SymbolicLayerSummary {
            k,
            new_symbolic: new_layer.len(),
            new_visible: new_visible.len(),
        };
        self.store
            .push_layer(new_layer, new_visible, self.states.len());
        Ok(summary)
    }

    /// Removes every symbolic state (ids `round_start..`) and visible
    /// state registered by a failed round, leaving the engine exactly
    /// at the previous bound so `advance` may be retried.
    fn rollback(&mut self, round_start: u32, new_visible: &[VisibleState]) {
        for state in self.states.drain(round_start as usize..) {
            self.index.remove(&state);
            if let Some(ids) = self.by_shared.get_mut(&state.q) {
                ids.retain(|&id| id < round_start);
            }
        }
        self.store.rollback_round(new_visible);
    }

    /// One full context of `thread` from symbolic state `tau_id`.
    ///
    /// The `post*` saturation itself polls the budget's interrupt
    /// every few transition insertions — on every shard when the
    /// sharded backend is active — so even a single pathological
    /// context step cannot overshoot a deadline by more than a poll
    /// interval.
    fn context_post(&self, tau_id: u32, thread: usize) -> Result<Vec<SymbolicState>, ExploreError> {
        let tau = &self.states[tau_id as usize];
        let num_controls = self.cpds.num_shared();
        let stack_nfa = tau.stacks[thread].to_nfa();
        let init = match Psa::from_stack_nfa(num_controls, tau.q, &stack_nfa) {
            Ok(p) => p,
            Err(_) => return Ok(Vec::new()),
        };
        let interrupt = &self.budget.interrupt;
        let saturated = post_star_with(
            self.cpds.thread(thread),
            &self.tables[thread],
            &init,
            self.budget.effective_threads(),
            &|| interrupt.check().is_ok(),
        )
        .map_err(|_| interrupt.check().err().unwrap_or(ExploreError::Cancelled))?;
        let mut out = Vec::new();
        for q2 in saturated.nonempty_controls() {
            let lang = saturated.stack_language(q2);
            let canon = CanonicalDfa::from_nfa(&lang);
            if canon.is_empty_language() {
                continue;
            }
            let mut stacks = tau.stacks.clone();
            stacks[thread] = canon;
            out.push(SymbolicState { q: q2, stacks });
        }
        Ok(out)
    }

    /// Stores a successor unless deduplicated/subsumed.
    fn register(
        &mut self,
        tau: SymbolicState,
        new_layer: &mut Vec<u32>,
        new_visible: &mut Vec<VisibleState>,
    ) -> Result<(), ExploreError> {
        if tau.is_empty() || self.index.contains_key(&tau) {
            return Ok(());
        }
        if self.mode == SubsumptionMode::Pointwise {
            if let Some(ids) = self.by_shared.get(&tau.q) {
                if ids
                    .iter()
                    .any(|&id| tau.subsumed_by(&self.states[id as usize]))
                {
                    return Ok(());
                }
            }
        }
        if self.states.len() >= self.budget.max_symbolic_states {
            return Err(ExploreError::SymbolicBudgetExceeded {
                limit: self.budget.max_symbolic_states,
            });
        }
        let id = self.states.len() as u32;
        for v in tau.visible_states() {
            if self.store.record_visible(v.clone()) {
                new_visible.push(v);
            }
        }
        self.index.insert(tau.clone(), id);
        self.by_shared.entry(tau.q).or_default().push(id);
        self.states.push(tau);
        new_layer.push(id);
        Ok(())
    }

    /// Runs rounds until collapse or `max_k`; returns the final bound.
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion from [`advance`](Self::advance).
    pub fn run_until_collapse(&mut self, max_k: usize) -> Result<usize, ExploreError> {
        while !self.is_collapsed() && self.current_k() < max_k {
            self.advance()?;
        }
        Ok(self.current_k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, Stack};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    /// The CPDS of Fig. 2 (foo/bar; does not satisfy FCR).
    /// Q = {⊥,0,1} encoded as {0,1,2}; Σ1 = {2,3,4,5}, Σ2 = {6,7,8,9}.
    fn fig2() -> Cpds {
        let bot = q(0);
        let x0 = q(1);
        let x1 = q(2);
        let mut p1 = PdsBuilder::new(3, 6);
        p1.overwrite(bot, s(2), x0, s(2)).unwrap(); // f0 (x := 0)
        p1.overwrite(bot, s(2), x1, s(2)).unwrap(); // f0 (x := 1)
        for x in [x0, x1] {
            p1.overwrite(x, s(2), x, s(3)).unwrap(); // f2a
            p1.overwrite(x, s(2), x, s(4)).unwrap(); // f2b
            p1.push(x, s(3), x, s(2), s(4)).unwrap(); // f3
            p1.pop(x, s(5), x1).unwrap(); // f5 (x := 1, return)
        }
        p1.overwrite(x1, s(4), x1, s(4)).unwrap(); // f4a spin while x
        p1.overwrite(x0, s(4), x0, s(5)).unwrap(); // f4b exit loop
        let mut p2 = PdsBuilder::new(3, 10);
        p2.overwrite(bot, s(6), x0, s(6)).unwrap(); // b0
        p2.overwrite(bot, s(6), x1, s(6)).unwrap(); // b0
        for x in [x0, x1] {
            p2.overwrite(x, s(6), x, s(7)).unwrap(); // b6a
            p2.overwrite(x, s(6), x, s(8)).unwrap(); // b6b
            p2.push(x, s(7), x, s(6), s(8)).unwrap(); // b7
            p2.pop(x, s(9), x0).unwrap(); // b9 (x := 0, return)
        }
        p2.overwrite(x0, s(8), x0, s(8)).unwrap(); // b8a spin while !x
        p2.overwrite(x1, s(8), x1, s(9)).unwrap(); // b8b exit loop
        CpdsBuilder::new(3, bot)
            .thread(p1.build().unwrap(), [s(2)])
            .thread(p2.build().unwrap(), [s(6)])
            .build()
            .unwrap()
    }

    #[test]
    fn singleton_contains_exactly_its_state() {
        let cpds = fig1();
        let init = cpds.initial_state();
        let tau = SymbolicState::singleton(&init);
        assert!(tau.contains(&init));
        let other = GlobalState::new(q(1), init.stacks.clone());
        assert!(!tau.contains(&other));
        assert!(!tau.is_empty());
        assert_eq!(tau.visible_states(), vec![init.visible()]);
    }

    #[test]
    fn symbolic_matches_explicit_on_fig1() {
        let cpds = fig1();
        let mut sym = SymbolicEngine::new(
            cpds.clone(),
            ExploreBudget::default(),
            SubsumptionMode::Exact,
        );
        let mut exp = crate::ExplicitEngine::new(cpds, ExploreBudget::default());
        for _ in 0..6 {
            sym.advance().unwrap();
            exp.advance().unwrap();
            // T(Sk) must equal T(Rk) at every bound.
            let sv: std::collections::HashSet<_> = sym.visible_total().cloned().collect();
            let ev: std::collections::HashSet<_> = exp.visible_total().cloned().collect();
            assert_eq!(sv, ev, "visible mismatch at k={}", sym.current_k());
        }
        // Every concrete state of R6 is covered symbolically.
        for state in exp.states() {
            assert!(sym.covers(state), "symbolic misses {state}");
        }
    }

    #[test]
    fn symbolic_handles_fig2_where_explicit_cannot() {
        let cpds = fig2();
        // Explicit exploration must hit its budget (no FCR)…
        let mut exp = crate::ExplicitEngine::new(cpds.clone(), ExploreBudget::tiny());
        assert!(exp.advance().is_err());
        // …while the symbolic engine computes rounds without trouble.
        let mut sym = SymbolicEngine::new(cpds, ExploreBudget::default(), SubsumptionMode::Exact);
        for _ in 0..3 {
            sym.advance().unwrap();
        }
        assert!(sym.num_visible() > 1);
    }

    #[test]
    fn fig2_collapses_like_example8() {
        // Ex. 8: R1 ⊊ R2 and R2 = R3 — the symbolic sequence collapses
        // by a small bound even though stacks are unbounded.
        let cpds = fig2();
        let mut sym = SymbolicEngine::new(cpds, ExploreBudget::default(), SubsumptionMode::Exact);
        let k = sym.run_until_collapse(8).unwrap();
        assert!(sym.is_collapsed(), "expected collapse, got k={k}");
        assert!(k <= 6, "collapse bound too large: {k}");
    }

    #[test]
    fn covers_example8_state() {
        // ⟨1|4,9⟩ in the paper's encoding is ⟨x=1|4,9⟩ = our ⟨2|4,9⟩,
        // reachable within two contexts.
        let cpds = fig2();
        let mut sym = SymbolicEngine::new(cpds, ExploreBudget::default(), SubsumptionMode::Exact);
        sym.advance().unwrap();
        sym.advance().unwrap();
        let state = GlobalState::new(
            q(2),
            vec![Stack::from_top_down([s(4)]), Stack::from_top_down([s(9)])],
        );
        assert!(sym.covers(&state));
    }

    #[test]
    fn pointwise_subsumption_never_grows_slower_than_exact() {
        let cpds = fig1();
        let mut exact = SymbolicEngine::new(
            cpds.clone(),
            ExploreBudget::default(),
            SubsumptionMode::Exact,
        );
        let mut pw =
            SymbolicEngine::new(cpds, ExploreBudget::default(), SubsumptionMode::Pointwise);
        for _ in 0..5 {
            exact.advance().unwrap();
            pw.advance().unwrap();
            let pv: std::collections::HashSet<_> = pw.visible_total().cloned().collect();
            let xv: std::collections::HashSet<_> = exact.visible_total().cloned().collect();
            assert_eq!(pv, xv);
            assert!(pw.num_symbolic_states() <= exact.num_symbolic_states());
        }
    }

    #[test]
    fn symbolic_budget_error() {
        let cpds = fig2();
        let mut sym = SymbolicEngine::new(
            cpds,
            ExploreBudget {
                max_symbolic_states: 3,
                ..ExploreBudget::default()
            },
            SubsumptionMode::Exact,
        );
        let mut got_err = false;
        for _ in 0..4 {
            if sym.advance().is_err() {
                got_err = true;
                break;
            }
        }
        assert!(got_err);
    }

    #[test]
    fn advancing_after_collapse_is_noop() {
        // Single thread, single overwrite: collapses immediately.
        let mut p = PdsBuilder::new(2, 1);
        p.overwrite(q(0), s(0), q(1), s(0)).unwrap();
        let cpds = CpdsBuilder::new(2, q(0))
            .thread(p.build().unwrap(), [s(0)])
            .build()
            .unwrap();
        let mut sym = SymbolicEngine::new(cpds, ExploreBudget::default(), SubsumptionMode::Exact);
        sym.run_until_collapse(10).unwrap();
        assert!(sym.is_collapsed());
        let summary = sym.advance().unwrap();
        assert_eq!(summary.new_symbolic, 0);
    }
}
