//! Shareable, demand-driven exploration: one explorer per system,
//! many property checkers.
//!
//! The layered sequences `(Rk)`/`(Sk)` depend only on the system, so a
//! [`SharedExplorer`] wraps one backend engine behind a mutex and
//! extends its [`LayerStore`] *on demand*: the first checker that asks
//! for bound `k` pays for the missing layers, every later checker
//! replays them for free. Callers pass their own [`Interrupt`] per
//! request; a round aborted by one caller's deadline is rolled back
//! (see [`ExplicitEngine::advance`]) and can be re-driven by anyone
//! else, so interruption never poisons the shared layers.
//!
//! [`ExplicitEngine::advance`]: crate::ExplicitEngine::advance

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use cuba_pds::{Cpds, VisibleState};
use cuba_telemetry::metrics::{stage_time, Stage};
use cuba_telemetry::trace;

use crate::snapshot::{self, DecodedBackend, SnapshotKind};
use crate::{
    ExplicitEngine, ExploreBudget, ExploreError, Interrupt, LayerStore, SubsumptionMode,
    SymbolicEngine,
};

/// The backend an explorer drives.
#[derive(Debug)]
enum BackendImpl {
    Explicit(ExplicitEngine),
    Symbolic(SymbolicEngine),
}

impl BackendImpl {
    fn store(&self) -> &LayerStore {
        match self {
            BackendImpl::Explicit(e) => e.store(),
            BackendImpl::Symbolic(e) => e.store(),
        }
    }

    fn set_interrupt(&mut self, interrupt: Interrupt) {
        match self {
            BackendImpl::Explicit(e) => e.set_interrupt(interrupt),
            BackendImpl::Symbolic(e) => e.set_interrupt(interrupt),
        }
    }

    fn advance(&mut self) -> Result<(), ExploreError> {
        match self {
            BackendImpl::Explicit(e) => e.advance().map(|_| ()),
            BackendImpl::Symbolic(e) => e.advance().map(|_| ()),
        }
    }
}

/// A bound-indexed snapshot of one layer, as a fresh engine would have
/// reported it at bound `k` — the unit a property checker consumes.
#[derive(Debug, Clone)]
pub struct LayerView {
    /// The context bound of the layer.
    pub k: usize,
    /// Visible states first seen at bound `k`.
    pub new_visible: Vec<VisibleState>,
    /// Cumulative stored states at bound `k` (`|Rk|` resp. `|Sk|`).
    pub states: usize,
    /// Cumulative visible states at bound `k` (`|T(Rk)|`).
    pub visible: usize,
    /// Whether the sequence had collapsed by bound `k`.
    pub collapsed: bool,
}

/// A push subscription to a [`SharedExplorer`]: the receiving half of
/// an unbounded channel that gets one [`LayerView`] per layer of the
/// shared exploration — first every layer already computed when the
/// subscription was opened (catch-up), then each freshly explored
/// layer the moment any caller's
/// [`ensure_layer`](SharedExplorer::ensure_layer) computes it.
///
/// Consumers (streaming service clients, event-driven checkers) are
/// thereby *notified* of progress instead of polling: with `N`
/// subscribers and one exploration, every layer is delivered exactly
/// once to each subscriber, in bound order, whoever paid for it.
/// Dropping the subscription unregisters it on the explorer's next
/// notification sweep.
#[derive(Debug)]
pub struct LayerSubscription {
    rx: mpsc::Receiver<LayerView>,
}

impl LayerSubscription {
    /// The next layer, if one is already queued (never blocks).
    pub fn try_next(&self) -> Option<LayerView> {
        self.rx.try_recv().ok()
    }

    /// The next layer, waiting up to `timeout` for one to be pushed.
    pub fn next_timeout(&self, timeout: Duration) -> Option<LayerView> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every queued layer (never blocks).
    pub fn drain(&self) -> Vec<LayerView> {
        std::iter::from_fn(|| self.try_next()).collect()
    }
}

/// One system's exploration, shared by any number of property
/// checkers (across engines of one session, across sessions of a
/// suite, and across threads of a parallel race).
///
/// The explorer owns the backend's resource budget; each
/// [`ensure_layer`](Self::ensure_layer) call layers the *caller's*
/// interrupt on top, so cancellation and deadlines stay per-caller
/// while the computed layers are shared.
#[derive(Debug)]
pub struct SharedExplorer {
    inner: Mutex<BackendImpl>,
    /// The interrupt baked into the creation budget, reinstalled after
    /// every request (private explorers keep their own wiring live).
    base_interrupt: Interrupt,
    symbolic: bool,
    /// Pre-collapse layers computed live — the "explored exactly once"
    /// instrumentation counter.
    rounds_explored: AtomicUsize,
    /// Push subscribers; locked strictly *after* `inner` (subscribe
    /// snapshots the store and registers atomically, notification
    /// happens while the computing caller still holds the store).
    subscribers: Mutex<Vec<mpsc::Sender<LayerView>>>,
}

impl SharedExplorer {
    /// A shared explorer over the explicit `(Rk)` layers.
    pub fn explicit(cpds: Cpds, budget: ExploreBudget) -> Self {
        let base_interrupt = budget.interrupt.clone();
        SharedExplorer {
            inner: Mutex::new(BackendImpl::Explicit(ExplicitEngine::new(cpds, budget))),
            base_interrupt,
            symbolic: false,
            rounds_explored: AtomicUsize::new(0),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// A shared explorer over the symbolic `(Sk)` layers.
    pub fn symbolic(cpds: Cpds, budget: ExploreBudget, mode: SubsumptionMode) -> Self {
        let base_interrupt = budget.interrupt.clone();
        SharedExplorer {
            inner: Mutex::new(BackendImpl::Symbolic(SymbolicEngine::new(
                cpds, budget, mode,
            ))),
            symbolic: true,
            base_interrupt,
            rounds_explored: AtomicUsize::new(0),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// Whether this explorer drives the symbolic backend.
    pub fn is_symbolic(&self) -> bool {
        self.symbolic
    }

    /// The deepest bound currently available for replay.
    pub fn depth(&self) -> usize {
        self.lock().store().current_k()
    }

    /// Pre-collapse layers computed live since creation. With `N`
    /// properties sharing the explorer this stays the depth of the
    /// deepest demand, not `N ×` it.
    pub fn rounds_explored(&self) -> usize {
        self.rounds_explored.load(Ordering::Relaxed)
    }

    /// Makes layer `k` available, computing missing layers under the
    /// caller's interrupt. Returns `true` when this call computed at
    /// least one new layer (a *live* round for the caller), `false`
    /// when everything up to `k` was already there (a replay).
    ///
    /// # Errors
    ///
    /// Budget exhaustion of the explorer's shared budget, or the
    /// caller's own cancellation/deadline. Interrupted rounds are
    /// rolled back; the layers stay valid and extendable.
    pub fn ensure_layer(&self, k: usize, interrupt: &Interrupt) -> Result<bool, ExploreError> {
        let mut inner = self.lock();
        if inner.store().current_k() >= k {
            return Ok(false);
        }
        let sat_start = std::time::Instant::now();
        let mut span = trace::span_args(
            "ensure_layer",
            vec![("k", k.into()), ("from", inner.store().current_k().into())],
        );
        inner.set_interrupt(self.base_interrupt.merged(interrupt));
        let mut result = Ok(true);
        while inner.store().current_k() < k {
            let live = !inner.store().is_collapsed();
            if let Err(e) = inner.advance() {
                result = Err(e);
                break;
            }
            if live {
                self.rounds_explored.fetch_add(1, Ordering::Relaxed);
            }
            // Push the fresh layer to every subscriber while the store
            // lock is still held, so deliveries are in bound order and
            // never raced by a concurrent subscribe()'s catch-up.
            let new_k = inner.store().current_k();
            self.notify(build_view(inner.store(), new_k));
        }
        inner.set_interrupt(self.base_interrupt.clone());
        span.arg("depth", inner.store().current_k());
        drop(span);
        stage_time(Stage::Saturate, sat_start.elapsed());
        result
    }

    /// Opens a push subscription: the receiver first gets every layer
    /// computed so far (catch-up, in bound order — layer 0, the
    /// initial state, always exists), then one [`LayerView`] per
    /// freshly explored layer, pushed by whichever caller's
    /// [`ensure_layer`](Self::ensure_layer) computes it.
    pub fn subscribe(&self) -> LayerSubscription {
        let inner = self.lock();
        let (tx, rx) = mpsc::channel();
        let store = inner.store();
        for k in 0..=store.current_k() {
            let _ = tx.send(build_view(store, k));
        }
        self.subscribers
            .lock()
            .expect("subscriber registry")
            .push(tx);
        LayerSubscription { rx }
    }

    /// Sends `view` to every live subscriber, dropping closed ones.
    /// Callers hold the `inner` lock (see the field's ordering note).
    fn notify(&self, view: LayerView) {
        let mut subs = self.subscribers.lock().expect("subscriber registry");
        if subs.is_empty() {
            return;
        }
        subs.retain(|tx| tx.send(view.clone()).is_ok());
    }

    /// The bound-indexed snapshot of layer `k`.
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet (call
    /// [`ensure_layer`](Self::ensure_layer) first).
    pub fn view(&self, k: usize) -> LayerView {
        build_view(self.lock().store(), k)
    }

    /// Runs a closure over the layer record (bound-indexed queries,
    /// e.g. the generator membership test `g ∈ T(Rk)`).
    pub fn with_store<R>(&self, f: impl FnOnce(&LayerStore) -> R) -> R {
        f(self.lock().store())
    }

    /// Runs a closure over the explicit backend (witness
    /// reconstruction); `None` for symbolic explorers.
    pub fn with_explicit<R>(&self, f: impl FnOnce(&ExplicitEngine) -> R) -> Option<R> {
        match &*self.lock() {
            BackendImpl::Explicit(e) => Some(f(e)),
            BackendImpl::Symbolic(_) => None,
        }
    }

    /// The snapshot backend kind this explorer would record.
    pub fn snapshot_kind(&self) -> SnapshotKind {
        match &*self.lock() {
            BackendImpl::Explicit(_) => SnapshotKind::Explicit,
            BackendImpl::Symbolic(e) => match e.mode() {
                SubsumptionMode::Exact => SnapshotKind::SymbolicExact,
                SubsumptionMode::Pointwise => SnapshotKind::SymbolicPointwise,
            },
        }
    }

    /// Serializes the exploration into the versioned binary snapshot
    /// format (see [`crate::snapshot`]), stamped with the caller's
    /// `fingerprint` of the system. Taken under the store lock, so the
    /// bytes always describe a sealed bound — never a half-computed
    /// round.
    ///
    /// Deterministic: saving, restoring, and saving again yields
    /// byte-identical output.
    pub fn snapshot(&self, fingerprint: u64) -> Vec<u8> {
        let inner = self.lock();
        let mut span = trace::span_args(
            "snapshot-encode",
            vec![("k", inner.store().current_k().into())],
        );
        let bytes = match &*inner {
            BackendImpl::Explicit(e) => snapshot::encode_explicit(e, fingerprint),
            BackendImpl::Symbolic(e) => snapshot::encode_symbolic(e, fingerprint),
        };
        span.arg("bytes", bytes.len());
        bytes
    }

    /// Rebuilds a shared explorer from snapshot `bytes`, verifying the
    /// header fingerprint against `fingerprint` and the recorded
    /// system structure against `cpds` byte-for-byte. The restored
    /// explorer replays its layers exactly as a live one would —
    /// [`ensure_layer`](Self::ensure_layer) returns `false` up to the
    /// recorded depth — and starts with
    /// [`rounds_explored`](Self::rounds_explored) at zero, since this
    /// process has computed nothing live yet.
    ///
    /// # Errors
    ///
    /// Offset-numbered decode errors (wrong magic, newer version,
    /// fingerprint/structure mismatch, checksum failure, truncation,
    /// trailing bytes, inconsistent tables); file content is never
    /// echoed.
    pub fn restore(
        cpds: Cpds,
        budget: ExploreBudget,
        fingerprint: u64,
        bytes: &[u8],
    ) -> Result<Self, String> {
        let mut span = trace::span_args("snapshot-restore", vec![("bytes", bytes.len().into())]);
        let base_interrupt = budget.interrupt.clone();
        let inner = match snapshot::decode(cpds, budget, fingerprint, bytes)? {
            DecodedBackend::Explicit(e) => BackendImpl::Explicit(*e),
            DecodedBackend::Symbolic(e) => BackendImpl::Symbolic(*e),
        };
        let symbolic = matches!(inner, BackendImpl::Symbolic(_));
        span.arg("k", inner.store().current_k());
        Ok(SharedExplorer {
            inner: Mutex::new(inner),
            base_interrupt,
            symbolic,
            rounds_explored: AtomicUsize::new(0),
            subscribers: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BackendImpl> {
        // Rounds are transactional only for *errors* (rolled back and
        // retryable); a panic mid-round leaves half-registered states
        // that a re-driven layer would silently omit — which could
        // turn into a wrong "safe" verdict downstream. Propagate the
        // poison and fail loudly instead.
        self.inner
            .lock()
            .expect("shared explorer poisoned by a panic mid-round; its layers are unusable")
    }
}

/// The bound-indexed snapshot of layer `k` of a (locked) store.
fn build_view(store: &LayerStore, k: usize) -> LayerView {
    LayerView {
        k,
        new_visible: store.visible_layer(k).to_vec(),
        states: store.state_count_at(k),
        visible: store.visible_count_at(k),
        collapsed: store.collapsed_by(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelToken;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    /// Demanding the same bound twice explores once and replays once.
    #[test]
    fn second_demand_is_a_replay() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let none = Interrupt::none();
        assert!(explorer.ensure_layer(3, &none).unwrap(), "first is live");
        assert_eq!(explorer.rounds_explored(), 3);
        assert!(!explorer.ensure_layer(3, &none).unwrap(), "second replays");
        assert!(!explorer.ensure_layer(1, &none).unwrap(), "shallower too");
        assert_eq!(explorer.rounds_explored(), 3, "no recomputation");
        // A deeper demand extends from where the store left off.
        assert!(explorer.ensure_layer(5, &none).unwrap());
        assert_eq!(explorer.rounds_explored(), 5);
        assert_eq!(explorer.depth(), 5);
    }

    /// A cancelled caller's round is rolled back; a later caller with
    /// no interrupt re-drives the same layer successfully and the
    /// layer contents match an unshared engine's.
    #[test]
    fn interruption_rolls_back_and_is_retryable() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = explorer
            .ensure_layer(2, &Interrupt::none().with_cancel(cancelled))
            .unwrap_err();
        assert_eq!(err, ExploreError::Cancelled);
        assert_eq!(explorer.depth(), 0, "failed rounds leave no layers");

        assert!(explorer.ensure_layer(2, &Interrupt::none()).unwrap());
        let mut reference = ExplicitEngine::new(fig1(), ExploreBudget::default());
        reference.advance().unwrap();
        reference.advance().unwrap();
        let view = explorer.view(2);
        assert_eq!(view.states, reference.num_states());
        assert_eq!(view.visible, reference.num_visible());
        let mut shared_visible = view.new_visible.clone();
        let mut reference_visible = reference.visible_layer(2).to_vec();
        shared_visible.sort_by_key(|v| v.to_string());
        reference_visible.sort_by_key(|v| v.to_string());
        assert_eq!(shared_visible, reference_visible);
    }

    /// A subscriber opened before exploration sees layer 0 (catch-up)
    /// and then each freshly explored layer exactly once, in bound
    /// order, regardless of which caller paid for it.
    #[test]
    fn subscription_pushes_each_fresh_layer_once() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let sub = explorer.subscribe();
        let none = Interrupt::none();
        assert_eq!(sub.drain().iter().map(|v| v.k).collect::<Vec<_>>(), [0]);

        explorer.ensure_layer(3, &none).unwrap();
        // A replaying caller pushes nothing new.
        explorer.ensure_layer(2, &none).unwrap();
        explorer.ensure_layer(5, &none).unwrap();
        let views = sub.drain();
        assert_eq!(
            views.iter().map(|v| v.k).collect::<Vec<_>>(),
            [1, 2, 3, 4, 5],
            "one delivery per fresh layer, in bound order"
        );
        // Pushed views match the bound-indexed replay views.
        for view in &views {
            let replay = explorer.view(view.k);
            assert_eq!(view.states, replay.states);
            assert_eq!(view.visible, replay.visible);
            assert_eq!(view.new_visible, replay.new_visible);
            assert_eq!(view.collapsed, replay.collapsed);
        }
    }

    /// A late subscriber catches up on every already-computed layer
    /// before receiving live pushes; a dropped subscription simply
    /// stops receiving (and is pruned on the next notification).
    #[test]
    fn late_subscribers_catch_up() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let none = Interrupt::none();
        explorer.ensure_layer(4, &none).unwrap();

        let early = explorer.subscribe();
        drop(explorer.subscribe()); // dropped before any notification
        assert_eq!(
            early.drain().iter().map(|v| v.k).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4],
            "catch-up delivers the full history"
        );
        explorer.ensure_layer(6, &none).unwrap();
        assert_eq!(early.try_next().map(|v| v.k), Some(5));
        assert_eq!(
            early
                .next_timeout(std::time::Duration::from_secs(1))
                .map(|v| v.k),
            Some(6)
        );
        assert!(early.try_next().is_none());
    }

    /// An interrupted (rolled-back) round notifies nobody: subscribers
    /// only ever see layers that are actually part of the store.
    #[test]
    fn rolled_back_rounds_are_not_pushed() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let sub = explorer.subscribe();
        let _ = sub.drain();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        explorer
            .ensure_layer(2, &Interrupt::none().with_cancel(cancelled))
            .unwrap_err();
        assert!(sub.try_next().is_none(), "no layer, no notification");

        explorer.ensure_layer(1, &Interrupt::none()).unwrap();
        assert_eq!(sub.try_next().map(|v| v.k), Some(1));
    }

    /// A restored explorer replays every recorded bound for free
    /// (`rounds_explored` stays 0), serves identical views, and counts
    /// only genuinely new layers as live — exactly like live sharing.
    #[test]
    fn restore_replays_recorded_bounds_for_free() {
        let live = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let none = Interrupt::none();
        live.ensure_layer(4, &none).unwrap();
        let bytes = live.snapshot(99);

        let restored =
            SharedExplorer::restore(fig1(), ExploreBudget::default(), 99, &bytes).unwrap();
        assert_eq!(restored.depth(), 4);
        assert!(!restored.is_symbolic());
        assert_eq!(restored.snapshot_kind(), crate::SnapshotKind::Explicit);
        assert!(
            !restored.ensure_layer(4, &none).unwrap(),
            "recorded bounds replay"
        );
        assert_eq!(restored.rounds_explored(), 0, "no live rounds yet");
        for k in 0..=4 {
            let a = live.view(k);
            let b = restored.view(k);
            assert_eq!(a.states, b.states);
            assert_eq!(a.visible, b.visible);
            assert_eq!(a.new_visible, b.new_visible);
            assert_eq!(a.collapsed, b.collapsed);
        }
        // Extending past the snapshot is live again, and the extended
        // store re-snapshots identically to a never-persisted one.
        assert!(restored.ensure_layer(6, &none).unwrap());
        assert_eq!(restored.rounds_explored(), 2);
        live.ensure_layer(6, &none).unwrap();
        assert_eq!(restored.snapshot(99), live.snapshot(99));
    }

    /// Restoring against the wrong system or a damaged file fails with
    /// an offset-numbered error.
    #[test]
    fn restore_rejects_wrong_fingerprint() {
        let live = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        live.ensure_layer(2, &Interrupt::none()).unwrap();
        let bytes = live.snapshot(1);
        let err = SharedExplorer::restore(fig1(), ExploreBudget::default(), 2, &bytes).unwrap_err();
        assert!(err.starts_with("snapshot offset "), "{err}");
    }

    /// Views are bound-indexed: extending the store past `k` does not
    /// change what a checker sees at `k`.
    #[test]
    fn views_are_stable_under_growth() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let none = Interrupt::none();
        explorer.ensure_layer(2, &none).unwrap();
        let before = explorer.view(2);
        explorer.ensure_layer(6, &none).unwrap();
        let after = explorer.view(2);
        assert_eq!(before.states, after.states);
        assert_eq!(before.visible, after.visible);
        assert_eq!(before.new_visible, after.new_visible);
        assert_eq!(before.collapsed, after.collapsed);
    }
}
