//! Shareable, demand-driven exploration: one explorer per system,
//! many property checkers.
//!
//! The layered sequences `(Rk)`/`(Sk)` depend only on the system, so a
//! [`SharedExplorer`] wraps one backend engine behind a mutex and
//! extends its [`LayerStore`] *on demand*: the first checker that asks
//! for bound `k` pays for the missing layers, every later checker
//! replays them for free. Callers pass their own [`Interrupt`] per
//! request; a round aborted by one caller's deadline is rolled back
//! (see [`ExplicitEngine::advance`]) and can be re-driven by anyone
//! else, so interruption never poisons the shared layers.
//!
//! [`ExplicitEngine::advance`]: crate::ExplicitEngine::advance

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cuba_pds::{Cpds, VisibleState};

use crate::{
    ExplicitEngine, ExploreBudget, ExploreError, Interrupt, LayerStore, SubsumptionMode,
    SymbolicEngine,
};

/// The backend an explorer drives.
#[derive(Debug)]
enum BackendImpl {
    Explicit(ExplicitEngine),
    Symbolic(SymbolicEngine),
}

impl BackendImpl {
    fn store(&self) -> &LayerStore {
        match self {
            BackendImpl::Explicit(e) => e.store(),
            BackendImpl::Symbolic(e) => e.store(),
        }
    }

    fn set_interrupt(&mut self, interrupt: Interrupt) {
        match self {
            BackendImpl::Explicit(e) => e.set_interrupt(interrupt),
            BackendImpl::Symbolic(e) => e.set_interrupt(interrupt),
        }
    }

    fn advance(&mut self) -> Result<(), ExploreError> {
        match self {
            BackendImpl::Explicit(e) => e.advance().map(|_| ()),
            BackendImpl::Symbolic(e) => e.advance().map(|_| ()),
        }
    }
}

/// A bound-indexed snapshot of one layer, as a fresh engine would have
/// reported it at bound `k` — the unit a property checker consumes.
#[derive(Debug, Clone)]
pub struct LayerView {
    /// The context bound of the layer.
    pub k: usize,
    /// Visible states first seen at bound `k`.
    pub new_visible: Vec<VisibleState>,
    /// Cumulative stored states at bound `k` (`|Rk|` resp. `|Sk|`).
    pub states: usize,
    /// Cumulative visible states at bound `k` (`|T(Rk)|`).
    pub visible: usize,
    /// Whether the sequence had collapsed by bound `k`.
    pub collapsed: bool,
}

/// One system's exploration, shared by any number of property
/// checkers (across engines of one session, across sessions of a
/// suite, and across threads of a parallel race).
///
/// The explorer owns the backend's resource budget; each
/// [`ensure_layer`](Self::ensure_layer) call layers the *caller's*
/// interrupt on top, so cancellation and deadlines stay per-caller
/// while the computed layers are shared.
#[derive(Debug)]
pub struct SharedExplorer {
    inner: Mutex<BackendImpl>,
    /// The interrupt baked into the creation budget, reinstalled after
    /// every request (private explorers keep their own wiring live).
    base_interrupt: Interrupt,
    symbolic: bool,
    /// Pre-collapse layers computed live — the "explored exactly once"
    /// instrumentation counter.
    rounds_explored: AtomicUsize,
}

impl SharedExplorer {
    /// A shared explorer over the explicit `(Rk)` layers.
    pub fn explicit(cpds: Cpds, budget: ExploreBudget) -> Self {
        let base_interrupt = budget.interrupt.clone();
        SharedExplorer {
            inner: Mutex::new(BackendImpl::Explicit(ExplicitEngine::new(cpds, budget))),
            base_interrupt,
            symbolic: false,
            rounds_explored: AtomicUsize::new(0),
        }
    }

    /// A shared explorer over the symbolic `(Sk)` layers.
    pub fn symbolic(cpds: Cpds, budget: ExploreBudget, mode: SubsumptionMode) -> Self {
        let base_interrupt = budget.interrupt.clone();
        SharedExplorer {
            inner: Mutex::new(BackendImpl::Symbolic(SymbolicEngine::new(
                cpds, budget, mode,
            ))),
            symbolic: true,
            base_interrupt,
            rounds_explored: AtomicUsize::new(0),
        }
    }

    /// Whether this explorer drives the symbolic backend.
    pub fn is_symbolic(&self) -> bool {
        self.symbolic
    }

    /// The deepest bound currently available for replay.
    pub fn depth(&self) -> usize {
        self.lock().store().current_k()
    }

    /// Pre-collapse layers computed live since creation. With `N`
    /// properties sharing the explorer this stays the depth of the
    /// deepest demand, not `N ×` it.
    pub fn rounds_explored(&self) -> usize {
        self.rounds_explored.load(Ordering::Relaxed)
    }

    /// Makes layer `k` available, computing missing layers under the
    /// caller's interrupt. Returns `true` when this call computed at
    /// least one new layer (a *live* round for the caller), `false`
    /// when everything up to `k` was already there (a replay).
    ///
    /// # Errors
    ///
    /// Budget exhaustion of the explorer's shared budget, or the
    /// caller's own cancellation/deadline. Interrupted rounds are
    /// rolled back; the layers stay valid and extendable.
    pub fn ensure_layer(&self, k: usize, interrupt: &Interrupt) -> Result<bool, ExploreError> {
        let mut inner = self.lock();
        if inner.store().current_k() >= k {
            return Ok(false);
        }
        inner.set_interrupt(self.base_interrupt.merged(interrupt));
        let mut result = Ok(true);
        while inner.store().current_k() < k {
            let live = !inner.store().is_collapsed();
            if let Err(e) = inner.advance() {
                result = Err(e);
                break;
            }
            if live {
                self.rounds_explored.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.set_interrupt(self.base_interrupt.clone());
        result
    }

    /// The bound-indexed snapshot of layer `k`.
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet (call
    /// [`ensure_layer`](Self::ensure_layer) first).
    pub fn view(&self, k: usize) -> LayerView {
        let inner = self.lock();
        let store = inner.store();
        LayerView {
            k,
            new_visible: store.visible_layer(k).to_vec(),
            states: store.state_count_at(k),
            visible: store.visible_count_at(k),
            collapsed: store.collapsed_by(k),
        }
    }

    /// Runs a closure over the layer record (bound-indexed queries,
    /// e.g. the generator membership test `g ∈ T(Rk)`).
    pub fn with_store<R>(&self, f: impl FnOnce(&LayerStore) -> R) -> R {
        f(self.lock().store())
    }

    /// Runs a closure over the explicit backend (witness
    /// reconstruction); `None` for symbolic explorers.
    pub fn with_explicit<R>(&self, f: impl FnOnce(&ExplicitEngine) -> R) -> Option<R> {
        match &*self.lock() {
            BackendImpl::Explicit(e) => Some(f(e)),
            BackendImpl::Symbolic(_) => None,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BackendImpl> {
        // Rounds are transactional only for *errors* (rolled back and
        // retryable); a panic mid-round leaves half-registered states
        // that a re-driven layer would silently omit — which could
        // turn into a wrong "safe" verdict downstream. Propagate the
        // poison and fail loudly instead.
        self.inner
            .lock()
            .expect("shared explorer poisoned by a panic mid-round; its layers are unusable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelToken;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    /// Demanding the same bound twice explores once and replays once.
    #[test]
    fn second_demand_is_a_replay() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let none = Interrupt::none();
        assert!(explorer.ensure_layer(3, &none).unwrap(), "first is live");
        assert_eq!(explorer.rounds_explored(), 3);
        assert!(!explorer.ensure_layer(3, &none).unwrap(), "second replays");
        assert!(!explorer.ensure_layer(1, &none).unwrap(), "shallower too");
        assert_eq!(explorer.rounds_explored(), 3, "no recomputation");
        // A deeper demand extends from where the store left off.
        assert!(explorer.ensure_layer(5, &none).unwrap());
        assert_eq!(explorer.rounds_explored(), 5);
        assert_eq!(explorer.depth(), 5);
    }

    /// A cancelled caller's round is rolled back; a later caller with
    /// no interrupt re-drives the same layer successfully and the
    /// layer contents match an unshared engine's.
    #[test]
    fn interruption_rolls_back_and_is_retryable() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = explorer
            .ensure_layer(2, &Interrupt::none().with_cancel(cancelled))
            .unwrap_err();
        assert_eq!(err, ExploreError::Cancelled);
        assert_eq!(explorer.depth(), 0, "failed rounds leave no layers");

        assert!(explorer.ensure_layer(2, &Interrupt::none()).unwrap());
        let mut reference = ExplicitEngine::new(fig1(), ExploreBudget::default());
        reference.advance().unwrap();
        reference.advance().unwrap();
        let view = explorer.view(2);
        assert_eq!(view.states, reference.num_states());
        assert_eq!(view.visible, reference.num_visible());
        let mut shared_visible = view.new_visible.clone();
        let mut reference_visible = reference.visible_layer(2).to_vec();
        shared_visible.sort_by_key(|v| v.to_string());
        reference_visible.sort_by_key(|v| v.to_string());
        assert_eq!(shared_visible, reference_visible);
    }

    /// Views are bound-indexed: extending the store past `k` does not
    /// change what a checker sees at `k`.
    #[test]
    fn views_are_stable_under_growth() {
        let explorer = SharedExplorer::explicit(fig1(), ExploreBudget::default());
        let none = Interrupt::none();
        explorer.ensure_layer(2, &none).unwrap();
        let before = explorer.view(2);
        explorer.ensure_layer(6, &none).unwrap();
        let after = explorer.view(2);
        assert_eq!(before.states, after.states);
        assert_eq!(before.visible, after.visible);
        assert_eq!(before.new_visible, after.new_visible);
        assert_eq!(before.collapsed, after.collapsed);
    }
}
