use cuba_pds::{Cpds, GlobalState, ThreadId};

/// One step of a witness path: thread `thread` fired action
/// `action_idx` (an index into that thread's `Δi`), reaching `state`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// The thread that triggered the step.
    pub thread: ThreadId,
    /// Index of the fired action in the thread's program.
    pub action_idx: usize,
    /// The global state reached by the step.
    pub state: GlobalState,
}

/// A concrete counterexample path from the initial state, as produced
/// by [`ExplicitEngine::witness`](crate::ExplicitEngine::witness).
/// Compare Ex. 8 of the paper, which exhibits such a path to
/// `⟨1|4,9⟩` using two contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The initial state the path starts from.
    pub start: GlobalState,
    /// The steps in order.
    pub steps: Vec<WitnessStep>,
}

impl Witness {
    /// The final state of the path (the witnessed state).
    pub fn end(&self) -> &GlobalState {
        self.steps.last().map(|s| &s.state).unwrap_or(&self.start)
    }

    /// Number of contexts used: the number of maximal runs of steps by
    /// the same thread.
    pub fn num_contexts(&self) -> usize {
        let mut contexts = 0;
        let mut last: Option<ThreadId> = None;
        for step in &self.steps {
            if last != Some(step.thread) {
                contexts += 1;
                last = Some(step.thread);
            }
        }
        contexts
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path is empty (the witnessed state is initial).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Validates the path against the CPDS semantics: every step must
    /// be a real successor of its predecessor, triggered by the stated
    /// thread and action. Returns `false` on the first invalid step.
    pub fn replay(&self, cpds: &Cpds) -> bool {
        let mut current = self.start.clone();
        for step in &self.steps {
            let mut ok = false;
            cpds.successors_of_thread_into(&current, step.thread.0, &mut |succ, idx| {
                if idx == step.action_idx && succ == step.state {
                    ok = true;
                }
            });
            if !ok {
                return false;
            }
            current = step.state.clone();
        }
        true
    }
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.start)?;
        let mut last: Option<ThreadId> = None;
        for step in &self.steps {
            if last.is_some() && last != Some(step.thread) {
                write!(f, " ◦")?; // context switch, as drawn in Thm. 11
            }
            last = Some(step.thread);
            write!(
                f,
                " -[t{}:a{}]-> {}",
                step.thread, step.action_idx, step.state
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, Stack, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    fn two_thread_cpds() -> Cpds {
        let mut p1 = PdsBuilder::new(2, 2);
        p1.overwrite(q(0), s(0), q(1), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(2, 2);
        p2.overwrite(q(1), s(0), q(0), s(1)).unwrap();
        CpdsBuilder::new(2, q(0))
            .thread(p1.build().unwrap(), [s(0)])
            .thread(p2.build().unwrap(), [s(0)])
            .build()
            .unwrap()
    }

    fn state(qq: u32, w1: &[u32], w2: &[u32]) -> GlobalState {
        GlobalState::new(
            q(qq),
            vec![
                Stack::from_top_down(w1.iter().map(|&x| s(x))),
                Stack::from_top_down(w2.iter().map(|&x| s(x))),
            ],
        )
    }

    #[test]
    fn replay_accepts_valid_path() {
        let cpds = two_thread_cpds();
        let w = Witness {
            start: state(0, &[0], &[0]),
            steps: vec![
                WitnessStep {
                    thread: ThreadId(0),
                    action_idx: 0,
                    state: state(1, &[1], &[0]),
                },
                WitnessStep {
                    thread: ThreadId(1),
                    action_idx: 0,
                    state: state(0, &[1], &[1]),
                },
            ],
        };
        assert!(w.replay(&cpds));
        assert_eq!(w.num_contexts(), 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.end(), &state(0, &[1], &[1]));
    }

    #[test]
    fn replay_rejects_wrong_state() {
        let cpds = two_thread_cpds();
        let w = Witness {
            start: state(0, &[0], &[0]),
            steps: vec![WitnessStep {
                thread: ThreadId(0),
                action_idx: 0,
                state: state(0, &[1], &[0]), // wrong q
            }],
        };
        assert!(!w.replay(&cpds));
    }

    #[test]
    fn replay_rejects_wrong_thread() {
        let cpds = two_thread_cpds();
        let w = Witness {
            start: state(0, &[0], &[0]),
            steps: vec![WitnessStep {
                thread: ThreadId(1), // thread 2 is not enabled at q0
                action_idx: 0,
                state: state(1, &[1], &[0]),
            }],
        };
        assert!(!w.replay(&cpds));
    }

    #[test]
    fn empty_witness() {
        let w = Witness {
            start: state(0, &[0], &[0]),
            steps: vec![],
        };
        assert!(w.is_empty());
        assert_eq!(w.num_contexts(), 0);
        assert!(w.replay(&two_thread_cpds()));
        assert_eq!(w.end(), &state(0, &[0], &[0]));
    }

    #[test]
    fn display_marks_context_switches() {
        let w = Witness {
            start: state(0, &[0], &[0]),
            steps: vec![
                WitnessStep {
                    thread: ThreadId(0),
                    action_idx: 0,
                    state: state(1, &[1], &[0]),
                },
                WitnessStep {
                    thread: ThreadId(1),
                    action_idx: 0,
                    state: state(0, &[1], &[1]),
                },
            ],
        };
        let text = w.to_string();
        assert!(text.contains("◦"));
        assert!(text.starts_with("<0|0,0>"));
    }
}
