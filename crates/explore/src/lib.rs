//! Context-bounded reachability engines for concurrent pushdown
//! systems (paper §2.3, §4, §6, App. E).
//!
//! Two engines compute the layered observation sequences that CUBA's
//! algorithms consume:
//!
//! * [`ExplicitEngine`] stores the sets `Rk` of global states
//!   reachable within `k` contexts extensionally. It requires finite
//!   context reachability (FCR, §5) to terminate per round and takes
//!   an [`ExploreBudget`] that turns divergence into a typed error.
//! * [`SymbolicEngine`] stores `Sk` as sets of *symbolic states*
//!   `⟨q|A1,…,An⟩` whose per-thread stack languages are canonical
//!   minimal DFAs ([`CanonicalDfa`](cuba_automata::CanonicalDfa)); a
//!   context of thread `i` is one `post*` saturation (App. E). It
//!   handles infinite `Rk`, at the cost the paper describes.
//!
//! Both engines expose the per-layer *new* states and new *visible*
//! states, which is exactly the data in the paper's Fig. 1 table, and
//! both detect collapse (`Rk = Rk+1`, Lemma 7).
//!
//! # Example
//!
//! ```
//! use cuba_explore::{ExplicitEngine, ExploreBudget};
//! use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = |n| SharedState(n);
//! let s = |n| StackSym(n);
//! let mut p1 = PdsBuilder::new(4, 3);
//! p1.overwrite(q(0), s(1), q(1), s(2))?;
//! p1.overwrite(q(3), s(2), q(0), s(1))?;
//! let mut p2 = PdsBuilder::new(4, 7);
//! p2.pop(q(0), s(4), q(0))?;
//! p2.overwrite(q(1), s(4), q(2), s(5))?;
//! p2.push(q(2), s(5), q(3), s(4), s(6))?;
//! let cpds = CpdsBuilder::new(4, q(0))
//!     .thread(p1.build()?, [s(1)])
//!     .thread(p2.build()?, [s(4)])
//!     .build()?;
//!
//! let mut engine = ExplicitEngine::new(cpds, ExploreBudget::default());
//! let layer1 = engine.advance()?; // computes R1 \ R0
//! assert_eq!(layer1.new_states, 2); // <1|2,4> and <0|1,eps>
//! # Ok(())
//! # }
//! ```

mod budget;
mod explicit;
mod layers;
mod search;
mod shared;
pub mod snapshot;
mod symbolic;
mod witness;

pub use budget::{CancelToken, ExploreBudget, ExploreError, Interrupt};
pub use explicit::{ExplicitEngine, LayerSummary};
pub use layers::LayerStore;
pub use search::bounded_witness_search;
pub use shared::{LayerSubscription, LayerView, SharedExplorer};
pub use snapshot::{SnapshotKind, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use symbolic::{SubsumptionMode, SymbolicEngine, SymbolicState};
pub use witness::{Witness, WitnessStep};
