use std::collections::{HashMap, HashSet, VecDeque};

use cuba_pds::{Cpds, GlobalState, ThreadId, VisibleState};

use crate::{ExploreBudget, ExploreError, Interrupt, LayerStore, Witness, WitnessStep};

/// How often (in explored states) the inner loops poll the
/// [`Interrupt`](crate::Interrupt): frequent enough that cancellation
/// is prompt, rare enough that the `Instant::now()` deadline reads
/// stay invisible in profiles.
pub(crate) const INTERRUPT_POLL_PERIOD: usize = 64;

/// Summary of one round (one new layer `Rk \ Rk−1`) of exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSummary {
    /// The context bound `k` of the freshly computed layer.
    pub k: usize,
    /// Number of global states new at bound `k`.
    pub new_states: usize,
    /// Number of visible states new at bound `k`.
    pub new_visible: usize,
}

/// Explicit-state layered exploration of `R0 ⊆ R1 ⊆ …` (paper §4).
///
/// Each call to [`advance`](ExplicitEngine::advance) computes the next
/// layer `Rk \ Rk−1` by running every thread to completion (one full
/// context) from each frontier state — the inductive step in the proof
/// of Thm. 17. The frontier-only strategy is sound because a path with
/// `≤ k+1` contexts is a path with `≤ k` contexts followed by one
/// context (Lemma 7's layering).
///
/// Any discovered state yields a replayable [`Witness`] whose context
/// count is bounded by the state's layer (witnesses are reconstructed
/// per layer, one context at a time — see [`witness`](Self::witness)).
#[derive(Debug)]
pub struct ExplicitEngine {
    cpds: Cpds,
    budget: ExploreBudget,
    states: Vec<GlobalState>,
    layer_of_state: Vec<u32>,
    index: HashMap<GlobalState, u32>,
    /// The property-independent layer record (shared vocabulary with
    /// the symbolic engine; see [`LayerStore`]).
    store: LayerStore,
}

impl ExplicitEngine {
    /// Creates an engine positioned at `R0 = {initial state}`.
    pub fn new(cpds: Cpds, budget: ExploreBudget) -> Self {
        let init = cpds.initial_state();
        let visible = init.visible();
        let mut index = HashMap::new();
        index.insert(init.clone(), 0u32);
        ExplicitEngine {
            cpds,
            budget,
            states: vec![init],
            layer_of_state: vec![0],
            index,
            store: LayerStore::new(visible),
        }
    }

    /// Rebuilds an engine from deserialized parts: the state table in
    /// discovery order plus an already-validated layer record. The
    /// lookup index and per-state layer bounds are derived, so a
    /// restored engine is indistinguishable from one that explored the
    /// same layers live.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency between the
    /// state table and the layer record, without echoing state content.
    pub(crate) fn from_parts(
        cpds: Cpds,
        budget: ExploreBudget,
        states: Vec<GlobalState>,
        store: LayerStore,
    ) -> Result<Self, String> {
        if states.len() != store.state_count_at(store.current_k()) {
            return Err("state table does not match the layer record".to_owned());
        }
        if states[0] != cpds.initial_state() {
            return Err("state 0 is not the initial state".to_owned());
        }
        let mut index = HashMap::with_capacity(states.len());
        for (id, state) in states.iter().enumerate() {
            if index.insert(state.clone(), id as u32).is_some() {
                return Err("duplicate global state in state table".to_owned());
            }
        }
        let mut layer_of_state = vec![0u32; states.len()];
        for k in 0..=store.current_k() {
            for &id in store.layer_ids(k) {
                layer_of_state[id as usize] = k as u32;
            }
        }
        Ok(ExplicitEngine {
            cpds,
            budget,
            states,
            layer_of_state,
            index,
            store,
        })
    }

    /// The CPDS being explored.
    pub fn cpds(&self) -> &Cpds {
        &self.cpds
    }

    /// The highest context bound computed so far.
    pub fn current_k(&self) -> usize {
        self.store.current_k()
    }

    /// Whether the sequence has collapsed (`Rk = Rk+1`); by Lemma 7
    /// this means `Rk = R` and further rounds add nothing.
    pub fn is_collapsed(&self) -> bool {
        self.store.is_collapsed()
    }

    /// The bound-indexed layer record.
    pub fn store(&self) -> &LayerStore {
        &self.store
    }

    /// Replaces the interrupt wiring of the engine's budget (a
    /// [`SharedExplorer`](crate::SharedExplorer) installs each caller's
    /// interrupt for the duration of its request).
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.budget.interrupt = interrupt;
    }

    /// Total number of distinct global states found so far.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The states first reached at context bound `k` (`Rk \ Rk−1`).
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn layer(&self, k: usize) -> impl Iterator<Item = &GlobalState> + '_ {
        self.store
            .layer_ids(k)
            .iter()
            .map(|&id| &self.states[id as usize])
    }

    /// The visible states first seen at context bound `k`
    /// (`T(Rk) \ T(Rk−1)`, the right column of the paper's Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if layer `k` has not been computed yet.
    pub fn visible_layer(&self, k: usize) -> &[VisibleState] {
        self.store.visible_layer(k)
    }

    /// All visible states seen so far, `T(Rk)` for the current `k`.
    pub fn visible_total(&self) -> impl Iterator<Item = &VisibleState> + '_ {
        self.store.visible_iter()
    }

    /// Number of visible states seen so far, `|T(Rk)|`.
    pub fn num_visible(&self) -> usize {
        self.store.num_visible()
    }

    /// All states found so far (the extensional `Rk`).
    pub fn states(&self) -> &[GlobalState] {
        &self.states
    }

    /// Looks up the id of a discovered state.
    pub fn find(&self, state: &GlobalState) -> Option<u32> {
        self.index.get(state).copied()
    }

    /// The context bound at which a state id was first reached.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer_of(&self, id: u32) -> usize {
        self.layer_of_state[id as usize] as usize
    }

    /// Computes the next layer `Rk+1 \ Rk`.
    ///
    /// After a collapse this is a cheap no-op returning an empty layer
    /// summary, so drivers may keep calling it.
    ///
    /// The round is *transactional*: on any error (budget exhaustion,
    /// cancellation, deadline) every state and visible-state
    /// registration of the failed round is rolled back, so the engine
    /// is left exactly at the previous bound and `advance` may be
    /// retried — the guarantee that lets a
    /// [`SharedExplorer`](crate::SharedExplorer) survive one caller's
    /// interruption without poisoning the layers for everyone else.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] when a budget is exhausted, which
    /// on the paper's benchmarks signals an FCR violation — switch to
    /// the symbolic engine in that case (§6 overall procedure).
    pub fn advance(&mut self) -> Result<LayerSummary, ExploreError> {
        self.budget.interrupt.check()?;
        let k = self.store.current_k() + 1;
        if self.store.is_collapsed() {
            self.store
                .push_layer(Vec::new(), Vec::new(), self.states.len());
            return Ok(LayerSummary {
                k,
                new_states: 0,
                new_visible: 0,
            });
        }
        let frontier: Vec<u32> = self.store.layer_ids(k - 1).to_vec();
        cuba_telemetry::metrics::METRICS.waves.inc();
        cuba_telemetry::metrics::METRICS
            .frontier_edges
            .observe(frontier.len() as u64);
        let mut wave_span = cuba_telemetry::trace::span_args(
            "wave",
            vec![("k", k.into()), ("frontier", frontier.len().into())],
        );
        let round_start = self.states.len() as u32;
        let mut new_layer: Vec<u32> = Vec::new();
        let mut new_visible: Vec<VisibleState> = Vec::new();

        for &start_id in &frontier {
            for thread in 0..self.cpds.num_threads() {
                if let Err(e) = self.context_closure(
                    start_id,
                    thread,
                    k as u32,
                    round_start,
                    &mut new_layer,
                    &mut new_visible,
                ) {
                    self.rollback(round_start, &new_visible);
                    return Err(e);
                }
            }
        }

        let summary = LayerSummary {
            k,
            new_states: new_layer.len(),
            new_visible: new_visible.len(),
        };
        wave_span.arg("new_states", summary.new_states);
        drop(wave_span);
        let merge_start = std::time::Instant::now();
        let mut merge_span = cuba_telemetry::trace::span("merge");
        self.store
            .push_layer(new_layer, new_visible, self.states.len());
        merge_span.arg("states", summary.new_states);
        drop(merge_span);
        cuba_telemetry::metrics::stage_time(
            cuba_telemetry::metrics::Stage::Merge,
            merge_start.elapsed(),
        );
        Ok(summary)
    }

    /// Removes every state (ids `round_start..`) and visible state
    /// registered by a failed round.
    fn rollback(&mut self, round_start: u32, new_visible: &[VisibleState]) {
        for state in self.states.drain(round_start as usize..) {
            self.index.remove(&state);
        }
        self.layer_of_state.truncate(round_start as usize);
        self.store.rollback_round(new_visible);
    }

    /// Runs thread `thread` to completion from `start_id` (one full
    /// context), registering every state not seen before. States of
    /// this round carry ids `≥ round_start`.
    fn context_closure(
        &mut self,
        start_id: u32,
        thread: usize,
        layer: u32,
        round_start: u32,
        new_layer: &mut Vec<u32>,
        new_visible: &mut Vec<VisibleState>,
    ) -> Result<(), ExploreError> {
        // BFS over →_thread within this context. Entries are state ids;
        // every state in the closure is stored globally (it is reachable
        // with the same context count as the closure's results).
        let mut queue: VecDeque<u32> = VecDeque::new();
        queue.push_back(start_id);
        let mut in_context: HashSet<u32> = HashSet::new();
        in_context.insert(start_id);
        let mut explored = 0usize;

        while let Some(id) = queue.pop_front() {
            explored += 1;
            if explored > self.budget.max_states_per_context {
                return Err(ExploreError::ContextBudgetExceeded {
                    limit: self.budget.max_states_per_context,
                    thread,
                });
            }
            // Poll inside the closure so a diverging context (FCR
            // violation) still honors cancellation and deadlines.
            if explored.is_multiple_of(INTERRUPT_POLL_PERIOD) {
                self.budget.interrupt.check()?;
            }
            let current = self.states[id as usize].clone();
            let mut discovered: Vec<GlobalState> = Vec::new();
            self.cpds
                .successors_of_thread_into(&current, thread, &mut |succ, _action_idx| {
                    discovered.push(succ);
                });
            for succ in discovered {
                if succ.stacks[thread].len() > self.budget.max_stack_depth {
                    return Err(ExploreError::StackDepthExceeded {
                        limit: self.budget.max_stack_depth,
                        thread,
                    });
                }
                let succ_id = match self.index.get(&succ) {
                    Some(&existing) => existing,
                    None => {
                        if self.states.len() >= self.budget.max_states {
                            return Err(ExploreError::StateBudgetExceeded {
                                limit: self.budget.max_states,
                            });
                        }
                        let new_id = self.states.len() as u32;
                        let visible = succ.visible();
                        self.index.insert(succ.clone(), new_id);
                        self.states.push(succ);
                        self.layer_of_state.push(layer);
                        new_layer.push(new_id);
                        if self.store.record_visible(visible.clone()) {
                            new_visible.push(visible);
                        }
                        new_id
                    }
                };
                // Continue the context from states that entered the
                // current layer (whether in this closure or an earlier
                // one of the same round — ids are append-only, so
                // `id ≥ round_start` is exactly that test). States from
                // older layers were already run to completion under
                // every thread when their own layer was the frontier,
                // so stopping there loses nothing and keeps each round
                // linear.
                if in_context.insert(succ_id) && succ_id >= round_start {
                    queue.push_back(succ_id);
                }
            }
        }
        Ok(())
    }

    /// Reconstructs a replayable witness path to a discovered state.
    ///
    /// The number of contexts of the returned path is at most the
    /// layer of the state: every layer-`k` state is, by construction
    /// of [`advance`](Self::advance), one thread-context away from a
    /// layer-`k−1` frontier state, so the path is rebuilt one context
    /// per layer. (Naively chaining discovery-time predecessor links
    /// would *not* give this bound: a state found by continuing a
    /// context through an already-known same-layer state would inherit
    /// that state's unrelated context history.)
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn witness(&self, id: u32) -> Witness {
        let mut suffix: Vec<WitnessStep> = Vec::new();
        let mut current = id;
        while self.layer_of(current) > 0 {
            let k = self.layer_of(current);
            let (frontier_id, mut context_steps) = self
                .context_predecessor(current, k - 1)
                .expect("layered invariant: one context from the previous frontier");
            context_steps.extend(std::mem::take(&mut suffix));
            suffix = context_steps;
            current = frontier_id;
        }
        Witness {
            start: self.states[current as usize].clone(),
            steps: suffix,
        }
    }

    /// Finds a frontier state of `layer` and a single-context path
    /// from it to `target_id`, by re-running one context closure with
    /// local path tracking.
    fn context_predecessor(&self, target_id: u32, layer: usize) -> Option<(u32, Vec<WitnessStep>)> {
        let target = &self.states[target_id as usize];
        for &start_id in self.store.layer_ids(layer) {
            for thread in 0..self.cpds.num_threads() {
                if let Some(steps) = self.local_context_path(start_id, thread, target) {
                    return Some((start_id, steps));
                }
            }
        }
        None
    }

    /// BFS over thread-`thread` steps from `start_id`, returning the
    /// step sequence to `target` if reachable within one context.
    fn local_context_path(
        &self,
        start_id: u32,
        thread: usize,
        target: &GlobalState,
    ) -> Option<Vec<WitnessStep>> {
        let start = &self.states[start_id as usize];
        if start == target {
            return Some(Vec::new());
        }
        let mut pred: HashMap<GlobalState, (GlobalState, usize)> = HashMap::new();
        let mut queue: VecDeque<GlobalState> = VecDeque::new();
        queue.push_back(start.clone());
        let mut explored = 0usize;
        while let Some(current) = queue.pop_front() {
            explored += 1;
            if explored > self.budget.max_states_per_context {
                return None;
            }
            let mut found = false;
            let mut next: Vec<(GlobalState, usize)> = Vec::new();
            self.cpds
                .successors_of_thread_into(&current, thread, &mut |succ, action_idx| {
                    next.push((succ, action_idx));
                });
            for (succ, action_idx) in next {
                if &succ != start && !pred.contains_key(&succ) {
                    pred.insert(succ.clone(), (current.clone(), action_idx));
                    if &succ == target {
                        found = true;
                        break;
                    }
                    queue.push_back(succ);
                }
            }
            if found {
                break;
            }
        }
        pred.contains_key(target).then(|| {
            let mut rev = Vec::new();
            let mut cur = target.clone();
            while &cur != start {
                let (p, action_idx) = pred[&cur].clone();
                rev.push(WitnessStep {
                    thread: ThreadId(thread),
                    action_idx,
                    state: cur.clone(),
                });
                cur = p;
            }
            rev.reverse();
            rev
        })
    }

    /// Runs rounds until collapse or until `max_k` rounds have been
    /// computed; returns the final context bound reached.
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion from [`advance`](Self::advance).
    pub fn run_until_collapse(&mut self, max_k: usize) -> Result<usize, ExploreError> {
        while !self.is_collapsed() && self.current_k() < max_k {
            self.advance()?;
        }
        Ok(self.current_k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, Stack, StackSym};
    use std::collections::HashSet;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    fn gs(qq: u32, w1: &[u32], w2: &[u32]) -> GlobalState {
        GlobalState::new(
            q(qq),
            vec![
                Stack::from_top_down(w1.iter().map(|&x| s(x))),
                Stack::from_top_down(w2.iter().map(|&x| s(x))),
            ],
        )
    }

    fn layer_set(engine: &ExplicitEngine, k: usize) -> HashSet<GlobalState> {
        engine.layer(k).cloned().collect()
    }

    #[test]
    fn fig1_layer_zero_is_initial() {
        let engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        assert_eq!(layer_set(&engine, 0), HashSet::from([gs(0, &[1], &[4])]));
        assert_eq!(engine.num_visible(), 1);
    }

    /// The exact reachability table of Fig. 1 (left column), k = 1..6.
    #[test]
    fn fig1_reachability_table() {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        for _ in 0..6 {
            engine.advance().unwrap();
        }
        assert_eq!(
            layer_set(&engine, 1),
            HashSet::from([gs(1, &[2], &[4]), gs(0, &[1], &[])])
        );
        assert_eq!(
            layer_set(&engine, 2),
            HashSet::from([gs(2, &[2], &[5]), gs(3, &[2], &[4, 6]), gs(1, &[2], &[])])
        );
        assert_eq!(
            layer_set(&engine, 3),
            HashSet::from([gs(0, &[1], &[4, 6]), gs(1, &[2], &[4, 6])])
        );
        assert_eq!(
            layer_set(&engine, 4),
            HashSet::from([
                gs(0, &[1], &[6]),
                gs(2, &[2], &[5, 6]),
                gs(3, &[2], &[4, 6, 6])
            ])
        );
        assert_eq!(
            layer_set(&engine, 5),
            HashSet::from([
                gs(0, &[1], &[4, 6, 6]),
                gs(1, &[2], &[4, 6, 6]),
                gs(1, &[2], &[6])
            ])
        );
        assert_eq!(
            layer_set(&engine, 6),
            HashSet::from([
                gs(0, &[1], &[6, 6]),
                gs(2, &[2], &[5, 6, 6]),
                gs(3, &[2], &[4, 6, 6, 6])
            ])
        );
    }

    /// The visible-state table of Fig. 1 (right column).
    #[test]
    fn fig1_visible_table() {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        for _ in 0..6 {
            engine.advance().unwrap();
        }
        let vl = |k: usize| -> HashSet<String> {
            engine
                .visible_layer(k)
                .iter()
                .map(|v| v.to_string())
                .collect()
        };
        assert_eq!(vl(0), HashSet::from(["<0|1,4>".to_owned()]));
        assert_eq!(
            vl(1),
            HashSet::from(["<1|2,4>".to_owned(), "<0|1,eps>".to_owned()])
        );
        assert_eq!(
            vl(2),
            HashSet::from([
                "<2|2,5>".to_owned(),
                "<3|2,4>".to_owned(),
                "<1|2,eps>".to_owned()
            ])
        );
        assert_eq!(vl(3), HashSet::new()); // plateau at k = 2
        assert_eq!(vl(4), HashSet::from(["<0|1,6>".to_owned()]));
        assert_eq!(vl(5), HashSet::from(["<1|2,6>".to_owned()]));
        assert_eq!(vl(6), HashSet::new()); // T collapses at k = 5
    }

    #[test]
    fn fig1_rk_diverges_but_layers_stay_finite() {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        for _ in 0..20 {
            let summary = engine.advance().unwrap();
            // (Rk) never collapses for Fig. 1 (Ex. 15: R is infinite).
            assert!(
                summary.new_states > 0,
                "unexpected collapse at k={}",
                summary.k
            );
        }
        assert!(!engine.is_collapsed());
    }

    #[test]
    fn witness_paths_replay() {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        for _ in 0..4 {
            engine.advance().unwrap();
        }
        let target = gs(0, &[1], &[6]);
        let id = engine.find(&target).expect("reached at k=4");
        let w = engine.witness(id);
        assert!(w.replay(engine.cpds()));
        assert_eq!(w.end(), &target);
        assert!(w.num_contexts() <= 4);
    }

    #[test]
    fn witness_contexts_bounded_by_layer() {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        for _ in 0..5 {
            engine.advance().unwrap();
        }
        for k in 0..=5usize {
            for state in engine.layer(k) {
                let id = engine.find(state).unwrap();
                let w = engine.witness(id);
                assert!(w.replay(engine.cpds()));
                assert!(
                    w.num_contexts() <= k,
                    "state {state} in layer {k} got witness with {} contexts",
                    w.num_contexts()
                );
            }
        }
    }

    /// A single-thread system that pushes forever within one context
    /// violates the per-context budget (FCR failure signature).
    #[test]
    fn budget_stops_infinite_context() {
        let mut p = PdsBuilder::new(1, 1);
        p.push(q(0), s(0), q(0), s(0), s(0)).unwrap();
        let cpds = CpdsBuilder::new(1, q(0))
            .thread(p.build().unwrap(), [s(0)])
            .build()
            .unwrap();
        let mut engine = ExplicitEngine::new(cpds, ExploreBudget::tiny());
        let err = engine.advance().unwrap_err();
        assert!(matches!(
            err,
            ExploreError::StackDepthExceeded { .. } | ExploreError::ContextBudgetExceeded { .. }
        ));
    }

    #[test]
    fn collapse_on_finite_system() {
        // Two threads that each overwrite once and stop.
        let mut p = PdsBuilder::new(2, 2);
        p.overwrite(q(0), s(0), q(1), s(1)).unwrap();
        let pds = p.build().unwrap();
        let cpds = CpdsBuilder::new(2, q(0))
            .threads(&pds, [s(0)], 2)
            .build()
            .unwrap();
        let mut engine = ExplicitEngine::new(cpds, ExploreBudget::default());
        let k = engine.run_until_collapse(50).unwrap();
        assert!(engine.is_collapsed());
        assert!(k <= 3, "collapsed at k={k}");
        // R = {<0|0,0>, <1|1,0>} — thread 2's action is enabled only at
        // q1 … which thread 1 reaches first; then thread 2 overwrites.
        assert_eq!(engine.num_states(), 3);
        // Advancing after collapse stays a no-op.
        let summary = engine.advance().unwrap();
        assert_eq!(summary.new_states, 0);
    }

    #[test]
    fn layer_of_reports_first_bound() {
        let mut engine = ExplicitEngine::new(fig1(), ExploreBudget::default());
        engine.advance().unwrap();
        engine.advance().unwrap();
        let id = engine.find(&gs(1, &[2], &[4])).unwrap();
        assert_eq!(engine.layer_of(id), 1);
    }
}
