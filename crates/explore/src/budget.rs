use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, cloneable cancellation flag.
///
/// Cloned handles observe the same flag, so a session (or a portfolio
/// arm that has already concluded) can ask every other engine to stop
/// *mid-round*: the exploration engines poll the token from their
/// inner loops and abort with [`ExploreError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; wakes nobody — engines
    /// observe the flag at their next poll point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether two handles share the same underlying flag.
    pub fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Cooperative interruption: an optional [`CancelToken`] plus an
/// optional wall-clock deadline.
///
/// Threaded through [`ExploreBudget`] into the engines so that *long
/// rounds* abort cooperatively — previously a caller could only give
/// up between rounds, which is useless exactly when a single context
/// closure explodes.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    /// Any fired token interrupts; multiple sources compose (e.g. a
    /// session-internal race token plus a caller's ctrl-C token).
    cancels: Vec<CancelToken>,
    deadline: Option<Instant>,
}

impl Interrupt {
    /// No interruption: engines run to completion or budget.
    pub fn none() -> Self {
        Interrupt::default()
    }

    /// Additionally interrupt when `token` is cancelled.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancels.push(token);
        self
    }

    /// Interrupt when the wall clock passes `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Interrupt `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// The registered cancellation tokens.
    pub fn cancel_tokens(&self) -> &[CancelToken] {
        &self.cancels
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether any interruption source is configured.
    pub fn is_armed(&self) -> bool {
        !self.cancels.is_empty() || self.deadline.is_some()
    }

    /// Composes two interrupts: any token of either fires, and the
    /// earlier of the two deadlines wins. Used by a
    /// [`SharedExplorer`](crate::SharedExplorer) to layer a caller's
    /// interrupt on top of the explorer's own baseline.
    pub fn merged(&self, other: &Interrupt) -> Interrupt {
        let mut cancels = self.cancels.clone();
        for token in &other.cancels {
            if !cancels.iter().any(|t| t.same_as(token)) {
                cancels.push(token.clone());
            }
        }
        let deadline = match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Interrupt { cancels, deadline }
    }

    /// Polls every source.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Cancelled`] when a token fired,
    /// [`ExploreError::DeadlineExceeded`] when the wall clock passed
    /// the deadline.
    pub fn check(&self) -> Result<(), ExploreError> {
        if self.cancels.iter().any(CancelToken::is_cancelled) {
            return Err(ExploreError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ExploreError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// Resource limits for exploration, plus the cooperative
/// [`Interrupt`].
///
/// A single context of one thread can reach infinitely many states
/// when finite context reachability (paper §5) fails — e.g. the Fig. 2
/// program pushes unboundedly without a context switch — so every
/// explicit search is bounded and exhaustion is reported as
/// [`ExploreError`] instead of diverging.
///
/// Equality compares the numeric limits only; the interrupt handle
/// and the saturation thread count are runtime wiring, not
/// configuration — any thread count yields identical results, so two
/// budgets differing only in `threads` are interchangeable (and cached
/// artifacts are shared across thread counts).
#[derive(Debug, Clone)]
pub struct ExploreBudget {
    /// Maximum number of distinct global states stored overall.
    pub max_states: usize,
    /// Maximum stack depth of any single thread in any stored state.
    pub max_stack_depth: usize,
    /// Maximum number of states explored within one context closure.
    pub max_states_per_context: usize,
    /// Maximum number of symbolic states stored overall (symbolic
    /// engine only).
    pub max_symbolic_states: usize,
    /// Worker threads for the sharded saturation backend: `0` asks for
    /// the machine's available parallelism, `1` runs the exact
    /// sequential code path. Any value yields the same verdicts,
    /// witnesses, and layer growth — saturation is a fixpoint, so
    /// insertion order may differ but the fixed point may not.
    pub threads: usize,
    /// Cooperative cancellation/deadline, polled from the engines'
    /// inner loops so even a diverging round stops promptly.
    pub interrupt: Interrupt,
}

impl PartialEq for ExploreBudget {
    fn eq(&self, other: &Self) -> bool {
        self.max_states == other.max_states
            && self.max_stack_depth == other.max_stack_depth
            && self.max_states_per_context == other.max_states_per_context
            && self.max_symbolic_states == other.max_symbolic_states
    }
}

impl Eq for ExploreBudget {}

impl Default for ExploreBudget {
    /// Generous defaults suitable for the paper's benchmark sizes.
    fn default() -> Self {
        ExploreBudget::generous()
    }
}

impl ExploreBudget {
    /// Generous defaults suitable for the paper's benchmark sizes.
    pub fn generous() -> Self {
        ExploreBudget {
            max_states: 2_000_000,
            max_stack_depth: 512,
            max_states_per_context: 1_000_000,
            max_symbolic_states: 200_000,
            threads: 0,
            interrupt: Interrupt::none(),
        }
    }

    /// A small budget for tests that exercise budget exhaustion.
    pub fn tiny() -> Self {
        ExploreBudget {
            max_states: 200,
            max_stack_depth: 16,
            max_states_per_context: 200,
            max_symbolic_states: 64,
            threads: 0,
            interrupt: Interrupt::none(),
        }
    }

    /// Replaces the interrupt wiring, keeping the numeric limits.
    pub fn with_interrupt(mut self, interrupt: Interrupt) -> Self {
        self.interrupt = interrupt;
        self
    }

    /// Replaces the saturation thread count, keeping everything else.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The saturation worker count after resolving `0` to the
    /// machine's available parallelism.
    ///
    /// The lookup is cached process-wide: `available_parallelism` reads
    /// cgroup files on Linux, and this resolver runs once per context
    /// step on the saturation hot path.
    pub fn effective_threads(&self) -> usize {
        static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        if self.threads == 0 {
            *AVAILABLE.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
        } else {
            self.threads
        }
    }
}

/// Exploration failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The total state budget was exhausted.
    StateBudgetExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A stack grew past the depth budget — the typical signature of a
    /// thread that violates finite context reachability.
    StackDepthExceeded {
        /// The configured limit.
        limit: usize,
        /// The thread whose stack overflowed the budget.
        thread: usize,
    },
    /// A single context closure exceeded its state budget.
    ContextBudgetExceeded {
        /// The configured limit.
        limit: usize,
        /// The thread being closed over.
        thread: usize,
    },
    /// The symbolic state budget was exhausted (the paper's
    /// out-of-memory case for Stefan-1 with 8 threads).
    SymbolicBudgetExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A [`CancelToken`] fired: another portfolio arm concluded, or
    /// the caller gave up.
    Cancelled,
    /// The wall-clock deadline passed mid-exploration.
    DeadlineExceeded,
}

impl ExploreError {
    /// Whether the error is a cooperative interruption (cancellation
    /// or deadline) rather than a genuine resource exhaustion.
    pub fn is_interruption(&self) -> bool {
        matches!(
            self,
            ExploreError::Cancelled | ExploreError::DeadlineExceeded
        )
    }
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateBudgetExceeded { limit } => {
                write!(f, "state budget of {limit} states exceeded")
            }
            ExploreError::StackDepthExceeded { limit, thread } => write!(
                f,
                "stack depth budget of {limit} exceeded by thread {thread} (likely FCR violation)"
            ),
            ExploreError::ContextBudgetExceeded { limit, thread } => write!(
                f,
                "per-context budget of {limit} states exceeded by thread {thread} (likely FCR violation)"
            ),
            ExploreError::SymbolicBudgetExceeded { limit } => {
                write!(f, "symbolic state budget of {limit} exceeded")
            }
            ExploreError::Cancelled => write!(f, "exploration cancelled"),
            ExploreError::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

impl std::error::Error for ExploreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_generous() {
        let b = ExploreBudget::default();
        assert!(b.max_states >= 1_000_000);
        assert!(b.max_stack_depth >= 256);
    }

    #[test]
    fn tiny_budget_is_tiny() {
        let b = ExploreBudget::tiny();
        assert!(b.max_states <= 1000);
    }

    #[test]
    fn errors_display() {
        for e in [
            ExploreError::StateBudgetExceeded { limit: 5 },
            ExploreError::StackDepthExceeded {
                limit: 5,
                thread: 1,
            },
            ExploreError::ContextBudgetExceeded {
                limit: 5,
                thread: 0,
            },
            ExploreError::SymbolicBudgetExceeded { limit: 5 },
        ] {
            assert!(e.to_string().contains('5'));
        }
        assert!(ExploreError::Cancelled.to_string().contains("cancelled"));
        assert!(ExploreError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn equality_ignores_interrupt() {
        let plain = ExploreBudget::default();
        let wired = ExploreBudget::default()
            .with_interrupt(Interrupt::none().with_cancel(CancelToken::new()));
        assert_eq!(plain, wired);
    }

    #[test]
    fn equality_ignores_threads() {
        let auto = ExploreBudget::default();
        let forced = ExploreBudget::default().with_threads(8);
        assert_eq!(auto, forced);
        assert_eq!(forced.effective_threads(), 8);
        assert!(auto.effective_threads() >= 1);
        assert_eq!(
            ExploreBudget::default().with_threads(1).effective_threads(),
            1
        );
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(token.same_as(&clone));
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());

        let interrupt = Interrupt::none().with_cancel(token);
        assert_eq!(interrupt.check(), Err(ExploreError::Cancelled));
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let interrupt = Interrupt::none().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(interrupt.check(), Err(ExploreError::DeadlineExceeded));
        let future = Interrupt::none().with_timeout(Duration::from_secs(3600));
        assert_eq!(future.check(), Ok(()));
        assert!(future.is_armed());
        assert!(!Interrupt::none().is_armed());
    }
}
