/// Resource limits for explicit exploration.
///
/// A single context of one thread can reach infinitely many states
/// when finite context reachability (paper §5) fails — e.g. the Fig. 2
/// program pushes unboundedly without a context switch — so every
/// explicit search is bounded and exhaustion is reported as
/// [`ExploreError`] instead of diverging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreBudget {
    /// Maximum number of distinct global states stored overall.
    pub max_states: usize,
    /// Maximum stack depth of any single thread in any stored state.
    pub max_stack_depth: usize,
    /// Maximum number of states explored within one context closure.
    pub max_states_per_context: usize,
    /// Maximum number of symbolic states stored overall (symbolic
    /// engine only).
    pub max_symbolic_states: usize,
}

impl Default for ExploreBudget {
    /// Generous defaults suitable for the paper's benchmark sizes.
    fn default() -> Self {
        ExploreBudget {
            max_states: 2_000_000,
            max_stack_depth: 512,
            max_states_per_context: 1_000_000,
            max_symbolic_states: 200_000,
        }
    }
}

impl ExploreBudget {
    /// A small budget for tests that exercise budget exhaustion.
    pub fn tiny() -> Self {
        ExploreBudget {
            max_states: 200,
            max_stack_depth: 16,
            max_states_per_context: 200,
            max_symbolic_states: 64,
        }
    }
}

/// Exploration failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The total state budget was exhausted.
    StateBudgetExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A stack grew past the depth budget — the typical signature of a
    /// thread that violates finite context reachability.
    StackDepthExceeded {
        /// The configured limit.
        limit: usize,
        /// The thread whose stack overflowed the budget.
        thread: usize,
    },
    /// A single context closure exceeded its state budget.
    ContextBudgetExceeded {
        /// The configured limit.
        limit: usize,
        /// The thread being closed over.
        thread: usize,
    },
    /// The symbolic state budget was exhausted (the paper's
    /// out-of-memory case for Stefan-1 with 8 threads).
    SymbolicBudgetExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateBudgetExceeded { limit } => {
                write!(f, "state budget of {limit} states exceeded")
            }
            ExploreError::StackDepthExceeded { limit, thread } => write!(
                f,
                "stack depth budget of {limit} exceeded by thread {thread} (likely FCR violation)"
            ),
            ExploreError::ContextBudgetExceeded { limit, thread } => write!(
                f,
                "per-context budget of {limit} states exceeded by thread {thread} (likely FCR violation)"
            ),
            ExploreError::SymbolicBudgetExceeded { limit } => {
                write!(f, "symbolic state budget of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_generous() {
        let b = ExploreBudget::default();
        assert!(b.max_states >= 1_000_000);
        assert!(b.max_stack_depth >= 256);
    }

    #[test]
    fn tiny_budget_is_tiny() {
        let b = ExploreBudget::tiny();
        assert!(b.max_states <= 1000);
    }

    #[test]
    fn errors_display() {
        for e in [
            ExploreError::StateBudgetExceeded { limit: 5 },
            ExploreError::StackDepthExceeded {
                limit: 5,
                thread: 1,
            },
            ExploreError::ContextBudgetExceeded {
                limit: 5,
                thread: 0,
            },
            ExploreError::SymbolicBudgetExceeded { limit: 5 },
        ] {
            assert!(e.to_string().contains('5'));
        }
    }
}
