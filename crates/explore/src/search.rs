//! Bounded witness search: reconstructs a concrete counterexample path
//! for refutations produced by the *symbolic* engines, which track
//! language-level state sets and therefore have no parent links.
//!
//! Once a violation is known to exist within `max_contexts` contexts,
//! a witness is a finite path, so an iterative-deepening search over
//! the number of steps per context is complete: for some finite step
//! budget the witness fits. Each probe is a plain BFS over
//! `(state, contexts used, steps left, active thread)` tuples, bounded
//! by the exploration budget.

use std::collections::{HashSet, VecDeque};

use cuba_pds::{Cpds, GlobalState, ThreadId, VisibleState};

use crate::{ExploreBudget, Witness, WitnessStep};

/// Step budgets tried by the iterative deepening.
const DEEPENING: [usize; 5] = [4, 8, 16, 32, 64];

/// Searches for a path of at most `max_contexts` contexts from the
/// initial state to a state whose visible projection satisfies
/// `violates`. Returns `None` when no witness is found within the
/// iterative-deepening step limits or the exploration budget — the
/// refutation itself remains valid, only the path reconstruction gave
/// up.
pub fn bounded_witness_search(
    cpds: &Cpds,
    violates: &dyn Fn(&VisibleState) -> bool,
    max_contexts: usize,
    budget: &ExploreBudget,
) -> Option<Witness> {
    let init = cpds.initial_state();
    if violates(&init.visible()) {
        return Some(Witness {
            start: init,
            steps: Vec::new(),
        });
    }
    DEEPENING
        .iter()
        .find_map(|&steps| probe(cpds, violates, max_contexts, steps, budget))
}

/// One BFS probe with a fixed per-context step budget.
fn probe(
    cpds: &Cpds,
    violates: &dyn Fn(&VisibleState) -> bool,
    max_contexts: usize,
    steps_per_context: usize,
    budget: &ExploreBudget,
) -> Option<Witness> {
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Key {
        state: GlobalState,
        contexts: usize,
        steps_left: usize,
        thread: usize,
    }

    let init = cpds.initial_state();
    let mut arena: Vec<Node> = vec![Node {
        state: init,
        contexts: 0,
        steps_left: 0,
        thread: usize::MAX,
        parent: usize::MAX,
        action_idx: 0,
    }];
    let mut seen: HashSet<Key> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(node_idx) = queue.pop_front() {
        if arena.len() > budget.max_states {
            return None;
        }
        // Interruption makes the reconstruction give up; the
        // refutation it decorates remains valid without a path.
        if node_idx.is_multiple_of(crate::explicit::INTERRUPT_POLL_PERIOD)
            && budget.interrupt.check().is_err()
        {
            return None;
        }
        let (state, contexts, steps_left, active) = {
            let n = &arena[node_idx];
            (n.state.clone(), n.contexts, n.steps_left, n.thread)
        };
        for thread in 0..cpds.num_threads() {
            // Either continue the active context or open a new one.
            let (next_contexts, next_steps) = if thread == active && steps_left > 0 {
                (contexts, steps_left - 1)
            } else if contexts < max_contexts {
                (contexts + 1, steps_per_context - 1)
            } else {
                continue;
            };
            let mut successors: Vec<(GlobalState, usize)> = Vec::new();
            cpds.successors_of_thread_into(&state, thread, &mut |succ, action_idx| {
                successors.push((succ, action_idx));
            });
            for (succ, action_idx) in successors {
                if succ.max_stack_len() > budget.max_stack_depth {
                    continue;
                }
                let hit = violates(&succ.visible());
                let key = Key {
                    state: succ.clone(),
                    contexts: next_contexts,
                    steps_left: next_steps,
                    thread,
                };
                if !hit && !seen.insert(key) {
                    continue;
                }
                arena.push(Node {
                    state: succ,
                    contexts: next_contexts,
                    steps_left: next_steps,
                    thread,
                    parent: node_idx,
                    action_idx,
                });
                let new_idx = arena.len() - 1;
                if hit {
                    return Some(reconstruct(&arena, new_idx));
                }
                queue.push_back(new_idx);
            }
        }
    }
    None
}

/// A search-tree node; `parent == usize::MAX` marks the root.
struct Node {
    state: GlobalState,
    contexts: usize,
    steps_left: usize,
    thread: usize,
    parent: usize,
    action_idx: usize,
}

fn reconstruct(arena: &[Node], end: usize) -> Witness {
    let mut rev = Vec::new();
    let mut cur = end;
    while arena[cur].parent != usize::MAX {
        rev.push(WitnessStep {
            thread: ThreadId(arena[cur].thread),
            action_idx: arena[cur].action_idx,
            state: arena[cur].state.clone(),
        });
        cur = arena[cur].parent;
    }
    rev.reverse();
    Witness {
        start: arena[cur].state.clone(),
        steps: rev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// Fig. 1 again: find ⟨1|2,6⟩, known to need 5 contexts.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    #[test]
    fn finds_deep_target_within_bound() {
        let cpds = fig1();
        let target = cuba_pds::VisibleState::new(q(1), vec![Some(s(2)), Some(s(6))]);
        let w = bounded_witness_search(&cpds, &|v| v == &target, 5, &ExploreBudget::default())
            .expect("reachable within 5 contexts");
        assert!(w.replay(&cpds));
        assert!(w.num_contexts() <= 5);
        assert_eq!(w.end().visible(), target);
    }

    #[test]
    fn respects_context_bound() {
        let cpds = fig1();
        let target = cuba_pds::VisibleState::new(q(1), vec![Some(s(2)), Some(s(6))]);
        // The target needs 5 contexts; with 4 it must not be found.
        assert!(
            bounded_witness_search(&cpds, &|v| v == &target, 4, &ExploreBudget::default())
                .is_none()
        );
    }

    #[test]
    fn initial_violation_yields_empty_witness() {
        let cpds = fig1();
        let init_visible = cpds.initial_state().visible();
        let w =
            bounded_witness_search(&cpds, &|v| v == &init_visible, 0, &ExploreBudget::default())
                .unwrap();
        assert!(w.is_empty());
    }

    /// Works on a system without FCR (the whole point: symbolic
    /// refutations on Fig. 2-like programs get concrete paths).
    #[test]
    fn works_without_fcr() {
        let mut p = PdsBuilder::new(2, 2);
        p.push(q(0), s(0), q(0), s(0), s(1)).unwrap(); // unbounded pushes
        p.overwrite(q(0), s(0), q(1), s(0)).unwrap();
        let cpds = CpdsBuilder::new(2, q(0))
            .thread(p.build().unwrap(), [s(0)])
            .build()
            .unwrap();
        let w = bounded_witness_search(&cpds, &|v| v.q == q(1), 1, &ExploreBudget::default())
            .expect("one overwrite reaches q1");
        assert!(w.replay(&cpds));
        assert_eq!(w.len(), 1);
    }
}
