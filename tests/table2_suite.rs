//! Integration test over the full Table 2 suite: every row's FCR and
//! safety verdict must match the paper's, the convergence/bug bounds
//! must be small (the paper's headline observation), and the OOM row
//! must exhaust its budget rather than lie.

use cuba::benchmarks::suite::table2_suite;
use cuba::core::{check_fcr, Cuba, CubaConfig, Verdict};
use cuba::explore::ExploreBudget;

fn config() -> CubaConfig {
    CubaConfig {
        budget: ExploreBudget {
            max_symbolic_states: 10_000,
            ..ExploreBudget::default()
        },
        max_k: 24,
        ..CubaConfig::default()
    }
}

#[test]
fn every_row_matches_the_paper() {
    for bench in table2_suite() {
        let label = bench.label();
        let fcr = check_fcr(&bench.cpds).holds();
        assert_eq!(fcr, bench.expect.fcr, "{label}: FCR mismatch");

        let result = Cuba::new(bench.cpds.clone(), bench.property.clone()).run(&config());
        match bench.expect.safe {
            Some(true) => {
                let outcome = result.unwrap_or_else(|e| panic!("{label}: {e}"));
                match &outcome.verdict {
                    Verdict::Safe { k, .. } => {
                        assert!(
                            *k <= 16,
                            "{label}: converged but only at k = {k} (paper: small bounds)"
                        );
                    }
                    other => panic!("{label}: expected Safe, got {other:?}"),
                }
            }
            Some(false) => {
                let outcome = result.unwrap_or_else(|e| panic!("{label}: {e}"));
                match &outcome.verdict {
                    Verdict::Unsafe { k, witness } => {
                        assert!(*k <= 10, "{label}: bug too deep at k = {k}");
                        if let Some(w) = witness {
                            assert!(w.replay(&bench.cpds), "{label}: witness must replay");
                            assert!(w.num_contexts() <= *k);
                        }
                    }
                    other => panic!("{label}: expected Unsafe, got {other:?}"),
                }
            }
            None => {
                // The paper ran out of memory here (stefan-1/8); we
                // must exhaust the symbolic budget, not conclude.
                assert!(
                    result.is_err(),
                    "{label}: expected budget exhaustion, got {:?}",
                    result.map(|o| o.verdict)
                );
            }
        }
    }
}

/// The suite's kmax ordering mirrors the paper: more threads, larger
/// convergence bounds within a family.
#[test]
fn kmax_grows_with_thread_count() {
    let mut bst_bounds = Vec::new();
    let mut stefan_bounds = Vec::new();
    for bench in table2_suite() {
        let result = Cuba::new(bench.cpds.clone(), bench.property.clone()).run(&config());
        if let Ok(outcome) = result {
            if let Verdict::Safe { k, .. } = outcome.verdict {
                match bench.id {
                    "bst-insert" => bst_bounds.push(k),
                    "stefan-1" => stefan_bounds.push(k),
                    _ => {}
                }
            }
        }
    }
    assert_eq!(bst_bounds.len(), 3);
    assert!(
        bst_bounds.windows(2).all(|w| w[0] <= w[1]),
        "{bst_bounds:?}"
    );
    assert_eq!(stefan_bounds.len(), 2);
    assert!(stefan_bounds[0] <= stefan_bounds[1], "{stefan_bounds:?}");
}

/// Bug bounds for the unsafe Bluetooth rows are reported tightly: the
/// same bound is found by the symbolic-only driver.
#[test]
fn bluetooth_bug_bounds_are_engine_independent() {
    use cuba::core::DriverMode;
    for bench in table2_suite()
        .into_iter()
        .filter(|b| b.id == "bluetooth-1" && b.config == "1+1")
    {
        let explicit = Cuba::new(bench.cpds.clone(), bench.property.clone())
            .run(&config())
            .unwrap();
        let symbolic = Cuba::new(bench.cpds.clone(), bench.property.clone())
            .run(&CubaConfig {
                mode: DriverMode::SymbolicOnly,
                ..config()
            })
            .unwrap();
        match (&explicit.verdict, &symbolic.verdict) {
            (Verdict::Unsafe { k: k1, .. }, Verdict::Unsafe { k: k2, .. }) => {
                assert_eq!(k1, k2, "bug bound must not depend on the engine")
            }
            other => panic!("expected two Unsafe verdicts, got {other:?}"),
        }
    }
}
