//! Integration tests of the shared-explorer architecture — the
//! acceptance criteria of the "one system, many properties"
//! milestone:
//!
//! * a multi-property suite over one CPDS reaches verdicts identical
//!   to the per-property baseline with strictly fewer total
//!   exploration (live) rounds;
//! * each backend's explorer runs its exploration exactly once up to
//!   the deepest bound any property required (counter-instrumented);
//! * a property demanding a deeper bound extends the shared layers
//!   past an earlier property's stopping point instead of restarting;
//! * `FrontierAware` scheduling still converges on fully replayed
//!   runs (replays carry their own flag and are excluded from cost
//!   accounting).

use std::sync::Arc;

use cuba::benchmarks::{fig1, fig2};
use cuba::core::{
    CubaOutcome, EngineKind, Portfolio, Property, SchedulePolicy, SessionConfig, SessionEvent,
    SystemArtifacts, Verdict,
};
use cuba::explore::SubsumptionMode;
use cuba::pds::{SharedState, StackSym, VisibleState};

fn vis(q: u32, tops: &[Option<u32>]) -> VisibleState {
    VisibleState::new(
        SharedState(q),
        tops.iter().map(|t| t.map(StackSym)).collect(),
    )
}

/// The three Fig. 1 properties of the acceptance criterion, in
/// shallow-to-deep order of the bound they need: a bug at k = 2, a bug
/// at k = 5, and full convergence (k = 6 computed).
fn fig1_properties() -> Vec<Property> {
    vec![
        Property::never_visible(vis(3, &[Some(2), Some(4)])), // unsafe@2
        Property::never_visible(vis(1, &[Some(2), Some(6)])), // unsafe@5
        Property::True,                                       // safe@5 (computes k = 6)
    ]
}

/// Runs one property, returning the outcome and the number of *live*
/// (non-replayed) rounds its session computed.
fn run_one(
    portfolio: &Portfolio,
    cpds: cuba::pds::Cpds,
    property: Property,
    artifacts: &Arc<SystemArtifacts>,
) -> (CubaOutcome, usize) {
    let mut live = 0usize;
    let outcome = portfolio
        .session_with(cpds, property, artifacts)
        .unwrap()
        .run_with(|event| {
            if matches!(
                event,
                SessionEvent::RoundCompleted {
                    replayed: false,
                    ..
                }
            ) {
                live += 1;
            }
        })
        .unwrap();
    (outcome, live)
}

fn verdict_repr(outcome: &CubaOutcome) -> String {
    format!("{:?}", outcome.verdict)
}

/// Acceptance: N = 3 properties over Fig. 1 under a single-arm
/// portfolio. The shared run reaches byte-identical verdicts to the
/// per-property baseline, explores each layer exactly once up to the
/// deepest demanded bound, and computes strictly fewer live rounds in
/// total.
#[test]
fn multi_property_suite_explores_once_with_identical_verdicts() {
    let portfolio = Portfolio::fixed(vec![EngineKind::Alg3Explicit]);

    // Per-property baseline: fresh artifacts (hence a fresh explorer)
    // for every property — the pre-refactor behavior.
    let mut baseline_verdicts = Vec::new();
    let mut baseline_live = 0usize;
    for property in fig1_properties() {
        let artifacts = Arc::new(SystemArtifacts::new());
        let (outcome, live) = run_one(&portfolio, fig1::build(), property, &artifacts);
        baseline_verdicts.push(verdict_repr(&outcome));
        baseline_live += live;
    }

    // Shared run: one set of artifacts for all three properties.
    let artifacts = Arc::new(SystemArtifacts::new());
    let mut shared_verdicts = Vec::new();
    let mut shared_live = 0usize;
    for property in fig1_properties() {
        let (outcome, live) = run_one(&portfolio, fig1::build(), property, &artifacts);
        shared_verdicts.push(verdict_repr(&outcome));
        shared_live += live;
    }

    assert_eq!(
        baseline_verdicts, shared_verdicts,
        "sharing must not change any verdict"
    );
    assert!(
        shared_live < baseline_live,
        "sharing must cut total live rounds: shared {shared_live} vs baseline {baseline_live}"
    );

    // The explorer ran its exploration exactly once up to the deepest
    // bound any property required: layers 1..=6 (Property::True
    // computes bound 6 to see the plateau), each computed once.
    let explorer = artifacts
        .explicit_explorer_if_started()
        .expect("the explicit explorer was started");
    assert_eq!(explorer.depth(), 6, "deepest demanded bound");
    assert_eq!(
        explorer.rounds_explored(),
        6,
        "each layer explored exactly once"
    );
}

/// A deeper-bound demand extends the shared layers: the first property
/// concludes at k = 2, the second forces exploration past that point.
/// Nothing below the first stopping point is ever recomputed.
#[test]
fn deeper_bound_demand_extends_shared_layers() {
    let portfolio = Portfolio::fixed(vec![EngineKind::Alg3Explicit]);
    let artifacts = Arc::new(SystemArtifacts::new());

    let shallow = Property::never_visible(vis(3, &[Some(2), Some(4)]));
    let (outcome, _) = run_one(&portfolio, fig1::build(), shallow, &artifacts);
    assert!(matches!(outcome.verdict, Verdict::Unsafe { k: 2, .. }));
    let explorer = artifacts.explicit_explorer_if_started().unwrap();
    let depth_after_shallow = explorer.depth();
    assert_eq!(depth_after_shallow, 2, "shallow property stopped early");
    assert_eq!(explorer.rounds_explored(), 2);

    // The deep property pushes past the first property's convergence
    // point; only the missing layers are computed.
    let (outcome, live) = run_one(&portfolio, fig1::build(), Property::True, &artifacts);
    assert!(matches!(outcome.verdict, Verdict::Safe { k: 5, .. }));
    assert_eq!(explorer.depth(), 6);
    assert_eq!(
        explorer.rounds_explored(),
        6,
        "layers 1..=2 were replayed, 3..=6 explored — never recomputed"
    );
    assert_eq!(outcome.rounds_replayed, 2, "bounds 1..=2 replayed");
    assert_eq!(live, outcome.rounds_explored);
    assert_eq!(
        outcome.rounds_explored, 5,
        "bound 0 plus bounds 3..=6 were this session's live rounds"
    );
}

/// A fully warm run replays everything: zero live exploration, same
/// verdict, and the default `FrontierAware` policy still converges
/// (replays are excluded from its plateau/balloon accounting).
#[test]
fn warm_artifacts_replay_everything_under_frontier_aware() {
    let portfolio = Portfolio::fixed(vec![EngineKind::Alg3Explicit, EngineKind::Scheme1Explicit])
        .with_config(SessionConfig {
            schedule: SchedulePolicy::frontier_aware(),
            ..SessionConfig::new()
        });
    let artifacts = Arc::new(SystemArtifacts::new());

    let (cold, cold_live) = run_one(&portfolio, fig1::build(), Property::True, &artifacts);
    assert!(cold.verdict.is_safe());
    assert!(cold_live > 0);
    let explored_after_cold = artifacts
        .explicit_explorer_if_started()
        .unwrap()
        .rounds_explored();

    let (warm, _) = run_one(&portfolio, fig1::build(), Property::True, &artifacts);
    assert_eq!(verdict_repr(&cold), verdict_repr(&warm));
    // k = 0 rounds are always attributed as live (the initial layer
    // exists from construction and costs nothing); every bound k ≥ 1
    // replays.
    assert_eq!(warm.rounds_explored, 2, "one k = 0 round per arm");
    assert!(warm.rounds_replayed > 0);
    assert_eq!(
        artifacts
            .explicit_explorer_if_started()
            .unwrap()
            .rounds_explored(),
        explored_after_cold,
        "a warm run must not re-explore any layer"
    );
}

/// The symbolic backend shares its `(Sk)` layers the same way: two
/// properties over the FCR-violating Fig. 2, identical verdicts to the
/// per-property baseline, exploration run once.
#[test]
fn symbolic_layers_shared_on_fig2() {
    let portfolio = Portfolio::auto(); // fig2 → symbolic arms
    let properties = || {
        vec![
            // ⟨x=1|4,9⟩ (Ex. 8) is reachable within 2 contexts.
            Property::never_visible(vis(2, &[Some(4), Some(9)])),
            Property::True,
        ]
    };

    let mut baseline = Vec::new();
    for property in properties() {
        let artifacts = Arc::new(SystemArtifacts::new());
        let (outcome, _) = run_one(&portfolio, fig2::build(), property, &artifacts);
        baseline.push(verdict_repr(&outcome));
    }

    let artifacts = Arc::new(SystemArtifacts::new());
    let mut shared = Vec::new();
    for property in properties() {
        let (outcome, _) = run_one(&portfolio, fig2::build(), property, &artifacts);
        shared.push(verdict_repr(&outcome));
    }
    assert_eq!(baseline, shared);

    let explorer = artifacts
        .symbolic_explorer_if_started(SubsumptionMode::Exact)
        .expect("the symbolic explorer was started");
    assert!(explorer.is_symbolic());
    assert_eq!(
        explorer.rounds_explored(),
        explorer.depth().min(explorer.rounds_explored()),
        "no symbolic layer explored twice"
    );
    // Fig. 2 collapses by a small bound; pre-collapse layers were
    // explored exactly once however many properties consumed them.
    assert!(explorer.rounds_explored() <= explorer.depth());
}

/// The full §6 auto race (three arms) keeps the exactly-once
/// guarantee: whatever the scheduler does, the shared store never
/// recomputes a layer.
#[test]
fn auto_race_never_recomputes_layers() {
    let portfolio = Portfolio::auto();
    let artifacts = Arc::new(SystemArtifacts::new());
    for property in fig1_properties() {
        let (outcome, _) = run_one(&portfolio, fig1::build(), property, &artifacts);
        assert!(!matches!(outcome.verdict, Verdict::Undetermined { .. }));
    }
    let explorer = artifacts.explicit_explorer_if_started().unwrap();
    // Fig. 1's (Rk) never collapses, so every stored bound was
    // explored live exactly once — by whichever arm got there first.
    assert_eq!(explorer.rounds_explored(), explorer.depth());
}
