//! Integration tests of the budget-aware scheduler and the suite
//! cache over the full Table 2 suite — the acceptance criteria of the
//! cost-aware-scheduling milestone:
//!
//! * per-round cost accounting: `RoundCompleted` events carry nonzero
//!   wall-clock and consistent state deltas;
//! * `FrontierAware` + `SuiteCache` reach the same verdicts as
//!   round-robin with strictly fewer total rounds;
//! * the cached path performs fewer FCR checks than the uncached one
//!   (counter-instrumented).
//!
//! The FCR-counter comparisons share a process-global counter, so the
//! counting tests serialize on a local mutex (other test *binaries*
//! run in other processes and cannot interfere).

use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use cuba::benchmarks::fig1;
use cuba::benchmarks::suite::{table2_problems, table2_suite};
use cuba::core::{
    fcr_checks_performed, AnalysisSession, Portfolio, Property, SchedulePolicy, SessionConfig,
    SessionEvent, SuiteCache, Verdict,
};
use cuba::explore::ExploreBudget;

/// Serializes every test of this binary: they all run `check_fcr`
/// somewhere, and two of them assert exact deltas of the
/// process-global FCR counter.
fn counter_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn suite_config(schedule: SchedulePolicy) -> SessionConfig {
    SessionConfig {
        budget: ExploreBudget {
            // Same cap as the table2 harness: keeps the OOM row
            // (stefan-1/8) bounded while every safe row still
            // converges (the batch binary uses a larger 20k cap; the
            // smaller one keeps this debug-mode test fast).
            max_symbolic_states: 10_000,
            ..ExploreBudget::default()
        },
        max_k: 32,
        schedule,
        ..SessionConfig::new()
    }
}

/// A verdict's scheduling-independent shape. The bug bound of an
/// unsafe verdict never depends on scheduling (every engine finds the
/// violation at the same `k`), so it is kept; the convergence bound of
/// a safe verdict legitimately differs by one depending on which arm
/// wins (Alg. 3 concludes at the plateau's start, Scheme 1 at the
/// collapse), so only the kind is compared.
fn verdict_key(result: &Result<cuba::core::CubaOutcome, cuba::core::CubaError>) -> String {
    match result {
        Ok(o) => match &o.verdict {
            Verdict::Safe { .. } => "safe".to_owned(),
            Verdict::Unsafe { k, .. } => format!("unsafe@{k}"),
            Verdict::Undetermined { .. } => "undetermined".to_owned(),
        },
        Err(e) => format!("error: {e}"),
    }
}

/// Runs the whole suite problem by problem under one policy, counting
/// every *live* (non-replayed) `RoundCompleted` across all arms — the
/// rounds that actually paid for exploration; replays are free —
/// optionally through a `SuiteCache`.
fn run_suite_counting(
    schedule: SchedulePolicy,
    cache: Option<&SuiteCache>,
) -> (Vec<String>, usize) {
    let portfolio = Portfolio::auto().with_config(suite_config(schedule));
    let mut verdicts = Vec::new();
    let mut live_rounds = 0usize;
    // Two passes over the suite: the second pass is where a shared
    // cache replays every layer instead of re-exploring, while the
    // uncached path pays full price twice.
    for (cpds, property) in table2_problems().into_iter().chain(table2_problems()) {
        let session = match cache {
            Some(cache) => {
                let artifacts = cache.artifacts(&cpds);
                portfolio.session_with(cpds, property, &artifacts)
            }
            // The fully uncached assembly (what `run_suite` did before
            // suite caching): the lineup decision and the session each
            // decide FCR for themselves.
            None => {
                let lineup = portfolio.lineup_for(&cpds);
                AnalysisSession::new(cpds, property, &lineup, portfolio.config())
            }
        };
        let result = match session {
            Ok(mut session) => {
                while let Some(event) = session.next_event() {
                    if matches!(
                        event,
                        SessionEvent::RoundCompleted {
                            replayed: false,
                            ..
                        }
                    ) {
                        live_rounds += 1;
                    }
                }
                session.into_outcome()
            }
            Err(e) => Err(e),
        };
        verdicts.push(verdict_key(&result));
    }
    (verdicts, live_rounds)
}

/// Acceptance: over two passes of `table2_problems()`, the
/// frontier-aware scheduler with a suite cache reaches exactly the
/// verdicts of round-robin while *exploring* strictly fewer live
/// rounds in total — the cached pass replays every already-computed
/// layer instead of re-exploring ("one system, many properties") —
/// and the cache cuts the number of FCR decisions.
#[test]
fn frontier_aware_with_cache_matches_round_robin_with_fewer_rounds() {
    let _guard = counter_lock().lock().unwrap();

    let fcr_before_rr = fcr_checks_performed();
    let (rr_verdicts, rr_rounds) = run_suite_counting(SchedulePolicy::RoundRobin, None);
    let rr_fcr_checks = fcr_checks_performed() - fcr_before_rr;

    let cache = SuiteCache::new();
    let fcr_before_fa = fcr_checks_performed();
    let (fa_verdicts, fa_rounds) =
        run_suite_counting(SchedulePolicy::frontier_aware(), Some(&cache));
    let fa_fcr_checks = fcr_checks_performed() - fcr_before_fa;

    let labels: Vec<String> = table2_suite().iter().map(|b| b.label()).collect();
    let all_labels: Vec<&String> = labels.iter().chain(labels.iter()).collect();
    for ((label, rr), fa) in all_labels.iter().zip(&rr_verdicts).zip(&fa_verdicts) {
        assert_eq!(rr, fa, "{label}: verdict changed under frontier-aware");
    }
    assert!(
        fa_rounds < rr_rounds,
        "the cached suite must explore strictly fewer live rounds: {fa_rounds} vs {rr_rounds}"
    );
    assert!(
        fa_fcr_checks < rr_fcr_checks,
        "the suite cache must cut FCR checks: cached {fa_fcr_checks} vs uncached {rr_fcr_checks}"
    );
    // One FCR decision per distinct system, computed inside the cache.
    assert_eq!(cache.len(), table2_suite().len());
}

/// A warm external cache is shared across `run_suite_cached` calls:
/// the second batch over the same systems decides no new FCR and
/// reaches the same verdicts. (Equivalence with the manual
/// session-by-session path is covered by the acceptance test above —
/// `run_suite_cached` drives the very same `session_with` entry
/// point.)
#[test]
fn run_suite_cached_reuses_a_warm_cache() {
    let _guard = counter_lock().lock().unwrap();

    // The fast explicit rows suffice to exercise cache reuse; the full
    // suite is covered by the acceptance test above.
    let problems = || -> Vec<_> {
        table2_suite()
            .into_iter()
            .filter(|b| b.expect.fcr)
            .map(|b| (b.cpds, b.property))
            .collect()
    };
    let portfolio = Portfolio::auto().with_config(suite_config(SchedulePolicy::frontier_aware()));
    let cache = SuiteCache::new();
    let first = portfolio.run_suite_cached(problems(), 4, &cache);
    let first_verdicts: Vec<String> = first.iter().map(verdict_key).collect();
    assert_eq!(cache.len(), problems().len());

    // A second batch over the same systems decides no new FCR: every
    // artifact lookup hits the warm cache.
    let fcr_before = fcr_checks_performed();
    let second = portfolio.run_suite_cached(problems(), 4, &cache);
    assert_eq!(fcr_checks_performed() - fcr_before, 0);
    let second_verdicts: Vec<String> = second.iter().map(verdict_key).collect();
    assert_eq!(first_verdicts, second_verdicts);
    assert!(cache.hits() >= problems().len());
}

/// Cost accounting: every `RoundCompleted` carries a nonzero
/// `elapsed`, replayed rounds carry zero `delta_states`, the *live*
/// deltas of the arms sharing one backend sum to that backend's final
/// state count (each layer is paid for exactly once, whichever arm got
/// there first), and the cumulative wall-clock of the stream is
/// monotone.
#[test]
fn round_events_carry_costs() {
    let _guard = counter_lock().lock().unwrap();
    let mut session = Portfolio::auto()
        .session(fig1::build(), Property::True)
        .unwrap();
    let mut cumulative = Duration::ZERO;
    // Both explicit arms share the `(Rk)` explorer; CBA explores on
    // its own. Key by backend: per-bound delta (each layer is paid for
    // once, whichever arm drove it — the replaying sibling reports 0)
    // and the largest observed cumulative state count.
    let mut deltas: std::collections::HashMap<(&str, usize), usize> = Default::default();
    let mut totals: std::collections::HashMap<&str, usize> = Default::default();
    let mut rounds = 0;
    for event in &mut session {
        if let SessionEvent::RoundCompleted {
            engine,
            k,
            states,
            delta_states,
            elapsed,
            replayed,
            ..
        } = &event
        {
            rounds += 1;
            assert!(*elapsed > Duration::ZERO, "round without wall-clock cost");
            if *replayed {
                assert_eq!(*delta_states, 0, "replays compute nothing");
            }
            let previous = cumulative;
            cumulative += *elapsed;
            assert!(cumulative > previous, "cumulative cost must be monotone");
            let backend = match engine.to_string().as_str() {
                "CBA" => "cba",
                _ => "explicit",
            };
            let slot = deltas.entry((backend, *k)).or_insert(0);
            *slot = (*delta_states).max(*slot);
            let total = totals.entry(backend).or_insert(0);
            *total = (*states).max(*total);
        }
    }
    assert!(rounds >= 7, "the race computes bounds 0..=6 somewhere");
    for (backend, total) in totals {
        let delta_sum: usize = deltas
            .iter()
            .filter(|((b, _), _)| *b == backend)
            .map(|(_, d)| d)
            .sum();
        assert_eq!(
            delta_sum, total,
            "{backend}: per-bound deltas must sum to the backend's state count"
        );
    }
    let outcome = session.into_outcome().unwrap();
    assert!(
        outcome.round_wall >= cumulative,
        "outcome round_wall covers the stream"
    );
    assert!(outcome.rounds_explored > 0, "a cold run explores live");
    assert!(outcome.verdict.is_safe());
}

/// The parallel race honors the schedule policy field and still agrees
/// with the sequential frontier-aware race.
#[test]
fn parallel_race_agrees_under_both_policies() {
    let _guard = counter_lock().lock().unwrap();
    for schedule in [SchedulePolicy::RoundRobin, SchedulePolicy::frontier_aware()] {
        let portfolio = Portfolio::auto().with_config(SessionConfig {
            schedule: schedule.clone(),
            ..SessionConfig::new()
        });
        let sequential = portfolio.run(fig1::build(), Property::True).unwrap();
        let parallel = portfolio
            .run_parallel(fig1::build(), Property::True, None)
            .unwrap();
        assert_eq!(
            sequential.verdict.is_safe(),
            parallel.verdict.is_safe(),
            "policy {schedule}"
        );
        assert!(parallel.round_wall > Duration::ZERO);
    }
}
