//! Determinism of the sharded parallel saturator across thread counts.
//!
//! The `--threads` knob parallelizes the `post*` waves *inside* a
//! context step; it must never change what the analysis computes. These
//! tests pin that contract end to end: the full bench suite (every
//! Table 2 row plus the fig1-multi block) produces identical structural
//! records at 1, 2 and 4 saturation threads, the symbolic engine's
//! layer growth and first-seen bounds are bitwise equal, and a
//! [`CancelToken`] fired mid-saturation still aborts promptly when the
//! waves are sharded across a worker pool.
//!
//! Scheduling is pinned to `RoundRobin` throughout: `FrontierAware`
//! adapts to wall-clock measurements, which is exactly the
//! nondeterminism these tests must not confuse with saturation-level
//! divergence. The CI `determinism` job runs the same comparison on the
//! release binary via `cuba bench --threads N --schedule round-robin`.

use std::collections::BTreeMap;

use cuba::benchmarks::fig1;
use cuba::benchmarks::suite::table2_suite;
use cuba::core::SchedulePolicy;
use cuba::explore::{
    CancelToken, ExploreBudget, ExploreError, Interrupt, SubsumptionMode, SymbolicEngine,
};
use cuba::pds::Cpds;
use cuba_bench::harness::{bench_suite, run_problems, BenchPlan, BenchRow};

fn plan(threads: usize) -> BenchPlan {
    BenchPlan {
        warmup: 0,
        samples: 1,
        workers: 4,
        schedule: SchedulePolicy::RoundRobin,
        reduce: false,
        threads,
        profile_map: None,
        seed: None,
    }
}

/// Everything in a bench row except the timing fields — the exact
/// complement of what the CI determinism job strips before diffing.
#[allow(clippy::type_complexity)]
fn structural(
    row: &BenchRow,
) -> (
    String,
    String,
    Option<String>,
    bool,
    Option<usize>,
    Option<bool>,
    Option<String>,
    usize,
    usize,
    usize,
    bool,
) {
    (
        row.label.clone(),
        row.verdict.clone(),
        row.reason.clone(),
        row.cache_hit,
        row.k,
        row.fcr,
        row.engine.clone(),
        row.rounds,
        row.rounds_explored,
        row.rounds_replayed,
        row.unstable,
    )
}

/// The full Table 2 suite (plus fig1-multi) at 1, 2 and 4 saturation
/// threads: verdict words, bounds, engines, and the explored/replayed
/// round split must be identical at every thread count.
#[test]
fn full_suite_records_agree_at_every_thread_count() {
    let baseline: Vec<_> = run_problems(&plan(1), bench_suite())
        .rows
        .iter()
        .map(structural)
        .collect();
    assert_eq!(baseline.len(), bench_suite().len());
    for threads in [2, 4] {
        let rows: Vec<_> = run_problems(&plan(threads), bench_suite())
            .rows
            .iter()
            .map(structural)
            .collect();
        assert_eq!(baseline.len(), rows.len());
        for (a, b) in baseline.iter().zip(&rows) {
            assert_eq!(a, b, "{}: threads=1 vs threads={threads} diverged", a.0);
        }
    }
}

/// One engine run's complete structural trace: per-round layer
/// summaries, final state/visible counts, cumulative state counts per
/// bound, and the first-seen bound of every visible state.
#[allow(clippy::type_complexity)]
fn symbolic_fingerprint(
    cpds: &Cpds,
    threads: usize,
) -> (
    Vec<(usize, usize, usize)>,
    usize,
    usize,
    Vec<usize>,
    BTreeMap<String, usize>,
) {
    let budget = ExploreBudget {
        max_symbolic_states: 20_000,
        ..ExploreBudget::default()
    }
    .with_threads(threads);
    let mut engine = SymbolicEngine::new(cpds.clone(), budget, SubsumptionMode::Exact);
    let mut layers = Vec::new();
    while !engine.is_collapsed() && engine.current_k() < 12 {
        match engine.advance() {
            Ok(s) => layers.push((s.k, s.new_symbolic, s.new_visible)),
            // Budget exhaustion is part of the trace: every thread
            // count must give up at the same point.
            Err(_) => {
                layers.push((usize::MAX, 0, 0));
                break;
            }
        }
    }
    let store = engine.store();
    let counts: Vec<usize> = (0..=store.current_k())
        .map(|k| store.state_count_at(k))
        .collect();
    let first_seen: BTreeMap<String, usize> = store
        .visible_iter()
        .map(|v| {
            let bound = store
                .first_seen_bound(v)
                .expect("visible state has a bound");
            (format!("{v:?}"), bound)
        })
        .collect();
    (
        layers,
        engine.num_symbolic_states(),
        engine.num_visible(),
        counts,
        first_seen,
    )
}

/// Layer-by-layer growth and the first-seen map of every visible state
/// are identical whether the saturation waves run sequentially or
/// sharded over 2 or 4 workers.
#[test]
fn first_seen_maps_are_thread_count_invariant() {
    let mut systems: Vec<(String, Cpds)> = vec![("fig1".to_owned(), fig1::build())];
    for id in ["dekker", "bluetooth-1", "bst-insert"] {
        let bench = table2_suite()
            .into_iter()
            .find(|b| b.id == id)
            .unwrap_or_else(|| panic!("suite row {id} missing"));
        systems.push((bench.label(), bench.cpds));
    }
    for (label, cpds) in &systems {
        let baseline = symbolic_fingerprint(cpds, 1);
        assert!(
            !baseline.4.is_empty(),
            "{label}: expected some visible states"
        );
        for threads in [2, 4] {
            let parallel = symbolic_fingerprint(cpds, threads);
            assert_eq!(
                baseline, parallel,
                "{label}: fingerprint diverged at threads={threads}"
            );
        }
    }
}

/// A token cancelled between rounds stops the very next `advance` at
/// every thread count — the sharded path checks the interrupt at the
/// top of every wave, not just at round boundaries.
#[test]
fn cancel_between_rounds_stops_next_advance_at_every_thread_count() {
    let bench = table2_suite()
        .into_iter()
        .find(|b| b.id == "stefan-1" && b.config == "8")
        .expect("stefan-1/8 row");
    for threads in [1, 2, 4] {
        let token = CancelToken::new();
        let budget = ExploreBudget {
            max_symbolic_states: 100_000,
            ..ExploreBudget::default()
        }
        .with_threads(threads)
        .with_interrupt(Interrupt::none().with_cancel(token.clone()));
        let mut engine = SymbolicEngine::new(bench.cpds.clone(), budget, SubsumptionMode::Exact);
        engine.advance().expect("first round runs uncancelled");
        token.cancel();
        assert_eq!(
            engine.advance().unwrap_err(),
            ExploreError::Cancelled,
            "threads={threads}"
        );
    }
}

/// A token fired from another thread *mid-round* interrupts a sharded
/// saturation: every worker polls the interrupt per
/// proposal batch and the merge polls per insertion batch, so the
/// abort lands within one poll interval instead of after the round.
/// stefan-1/8 is the paper's out-of-memory row — without the cancel it
/// would grind toward the (here unreachably large) state budget.
#[test]
fn concurrent_cancel_interrupts_a_sharded_round_promptly() {
    let bench = table2_suite()
        .into_iter()
        .find(|b| b.id == "stefan-1" && b.config == "8")
        .expect("stefan-1/8 row");
    let token = CancelToken::new();
    let budget = ExploreBudget {
        max_symbolic_states: 1_000_000,
        ..ExploreBudget::default()
    }
    .with_threads(4)
    .with_interrupt(Interrupt::none().with_cancel(token.clone()));
    let mut engine = SymbolicEngine::new(bench.cpds, budget, SubsumptionMode::Exact);
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            token.cancel();
        })
    };
    let err = loop {
        match engine.advance() {
            Ok(_) => {
                assert!(
                    !engine.is_collapsed(),
                    "stefan-1/8 must not collapse (paper: OOM row)"
                );
            }
            Err(e) => break e,
        }
    };
    canceller.join().unwrap();
    assert_eq!(err, ExploreError::Cancelled);
}
