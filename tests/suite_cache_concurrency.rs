//! Concurrency coverage for `SuiteCache`/`run_suite_cached` — the
//! invariants the serve broker's long-lived cache rests on:
//!
//! * N threads hammering `lookup` on the same and distinct CPDS
//!   fingerprints get one slot per distinct system (`Arc`-identical
//!   across threads, misses counted exactly once);
//! * a concurrent `run_suite_cached` batch over two systems and many
//!   duplicated properties performs **exactly one FCR check per
//!   system** and leaves each system's shared explorer with the same
//!   `rounds_explored` as an unshared sequential baseline — layers
//!   are explored exactly once, whichever worker pays.
//!
//! The FCR comparison reads a process-global counter, so the tests
//! that touch it serialize on a local lock (same pattern as
//! `schedule_and_cache.rs`).

use std::sync::{Arc, Mutex, OnceLock};

use cuba::benchmarks::{fig1, fig2};
use cuba::core::{
    fcr_checks_performed, Portfolio, Property, SchedulePolicy, SessionConfig, SuiteCache,
    SystemArtifacts, Verdict,
};
use cuba::explore::SubsumptionMode;
use cuba::pds::{Cpds, SharedState, StackSym, VisibleState};

fn counter_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn vis(q: u32, tops: &[u32]) -> VisibleState {
    VisibleState::new(
        SharedState(q),
        tops.iter().map(|&t| Some(StackSym(t))).collect(),
    )
}

/// Lockstep scheduling: per-arm progress is then a pure function of
/// the problem, so explorer counters are comparable across runs.
fn portfolio() -> Portfolio {
    Portfolio::auto().with_config(SessionConfig {
        schedule: SchedulePolicy::RoundRobin,
        max_k: 32,
        ..SessionConfig::new()
    })
}

/// The fig1 property mix: a shallow bug, a deep bug, full
/// convergence — so concurrent sessions demand different depths.
fn fig1_properties() -> Vec<Property> {
    vec![
        Property::never_visible(vis(3, &[2, 4])), // unsafe@2
        Property::never_visible(vis(1, &[2, 6])), // unsafe@5
        Property::True,                           // safe@5
    ]
}

/// Eight threads, many lookups, two distinct systems: one slot each,
/// counted exactly once, shared by pointer across every thread.
#[test]
fn concurrent_lookups_share_slots_exactly() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 25;
    let cache = SuiteCache::new();
    let witnesses: Vec<(Arc<SystemArtifacts>, Arc<SystemArtifacts>)> =
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(|| {
                        let mut last = None;
                        for _ in 0..ROUNDS {
                            let a1 = cache.artifacts(&fig1::build());
                            let a2 = cache.artifacts(&fig2::build());
                            last = Some((a1, a2));
                        }
                        last.expect("ran at least one round")
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("lookup thread"))
                .collect()
        });

    assert_eq!(cache.len(), 2, "two distinct systems, two slots");
    assert_eq!(cache.misses(), 2, "each slot created exactly once");
    assert_eq!(cache.hits(), THREADS * ROUNDS * 2 - 2);
    let (first1, first2) = &witnesses[0];
    for (a1, a2) in &witnesses {
        assert!(Arc::ptr_eq(a1, first1), "same fig1 slot on every thread");
        assert!(Arc::ptr_eq(a2, first2), "same fig2 slot on every thread");
        assert!(!Arc::ptr_eq(a1, a2), "distinct systems stay distinct");
    }
}

/// A concurrent batch over two systems × duplicated properties:
/// verdicts are correct, FCR runs once per system, and each system's
/// shared explorer ends with the sequential baseline's
/// `rounds_explored` — not `workers ×` it.
#[test]
fn concurrent_suite_explores_and_checks_each_system_once() {
    let _guard = counter_lock().lock().unwrap();
    let portfolio = portfolio();

    // Unshared sequential baseline: one system, all its properties,
    // fresh artifacts — records the exactly-once expectations.
    let baseline = |cpds: Cpds, properties: &[Property]| {
        let artifacts = Arc::new(SystemArtifacts::new());
        for property in properties {
            portfolio
                .session_with(cpds.clone(), property.clone(), &artifacts)
                .expect("session opens")
                .run()
                .expect("baseline run succeeds");
        }
        artifacts
    };
    let fig1_baseline = baseline(fig1::build(), &fig1_properties());
    let fig1_explored = fig1_baseline
        .explicit_explorer_if_started()
        .expect("fig1 is explicit")
        .rounds_explored();
    let fig2_baseline = baseline(fig2::build(), &[Property::True]);
    let fig2_explored = fig2_baseline
        .symbolic_explorer_if_started(SubsumptionMode::Exact)
        .expect("fig2 is symbolic")
        .rounds_explored();
    assert!(fig1_explored > 0 && fig2_explored > 0);

    // The hammering batch: every fig1 property three times, fig2
    // three times — 12 problems, 8 workers, one shared cache.
    let mut problems: Vec<(Cpds, Property)> = Vec::new();
    for _ in 0..3 {
        for property in fig1_properties() {
            problems.push((fig1::build(), property));
        }
        problems.push((fig2::build(), Property::True));
    }
    let expected: Vec<&str> = problems
        .iter()
        .map(|(cpds, property)| {
            match (cpds.num_shared() == 4, property) {
                (true, Property::True) => "safe",
                (true, _) => "unsafe",
                (false, _) => "safe", // fig2 converges safely
            }
        })
        .collect();

    let cache = SuiteCache::new();
    let fcr_before = fcr_checks_performed();
    let results = portfolio.run_suite_cached(problems, 8, &cache);
    let fcr_delta = fcr_checks_performed() - fcr_before;

    assert_eq!(
        fcr_delta, 2,
        "exactly one FCR check per distinct system, however many workers"
    );
    for (result, want) in results.iter().zip(&expected) {
        let verdict = &result.as_ref().expect("suite run succeeds").verdict;
        let got = match verdict {
            Verdict::Safe { .. } => "safe",
            Verdict::Unsafe { .. } => "unsafe",
            Verdict::Undetermined { .. } => "undetermined",
        };
        assert_eq!(&got, want, "verdict drift under concurrency: {verdict}");
    }

    assert_eq!(cache.len(), 2);
    let entries = cache.entries();
    let entry_for = |shared: u32| {
        entries
            .iter()
            .find(|e| e.system.num_shared() == shared)
            .expect("system cached")
    };
    let fig1_shared = entry_for(4)
        .artifacts
        .explicit_explorer_if_started()
        .expect("fig1 explored explicitly");
    assert_eq!(
        fig1_shared.rounds_explored(),
        fig1_explored,
        "nine fig1 sessions must explore each layer exactly once"
    );
    let fig2_shared = entry_for(3)
        .artifacts
        .symbolic_explorer_if_started(SubsumptionMode::Exact)
        .expect("fig2 explored symbolically");
    assert_eq!(
        fig2_shared.rounds_explored(),
        fig2_explored,
        "three fig2 sessions must explore each layer exactly once"
    );
}
