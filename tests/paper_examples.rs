//! End-to-end integration tests pinning the paper's concrete numbers:
//! the Fig. 1 reachability table, Ex. 8's context bounds, Ex. 13's Z,
//! Ex. 14's generator run, Fig. 4's FCR verdicts, Fig. 7's PSA.

use std::collections::HashSet;

use cuba::automata::{bounded_reach, post_star_from_config};
use cuba::benchmarks::{fig1, fig2, fig7};
use cuba::core::{
    alg3_explicit, alg3_symbolic, check_fcr, compute_z, scheme1_explicit, scheme1_symbolic,
    Alg3Config, ConvergenceMethod, CubaError, GeneratorSet, Property, Scheme1Config, Verdict,
};
use cuba::explore::{ExplicitEngine, ExploreBudget, SubsumptionMode, SymbolicEngine};
use cuba::pds::{SharedState, StackSym, VisibleState};

fn vis(q: u32, tops: &[Option<u32>]) -> VisibleState {
    VisibleState::new(
        SharedState(q),
        tops.iter().map(|t| t.map(StackSym)).collect(),
    )
}

/// Fig. 1 (right): the exact per-bound visible-state table.
#[test]
fn fig1_visible_state_table() {
    let mut engine = ExplicitEngine::new(fig1::build(), ExploreBudget::default());
    for _ in 0..6 {
        engine.advance().unwrap();
    }
    let layer = |k: usize| -> HashSet<String> {
        engine
            .visible_layer(k)
            .iter()
            .map(|v| v.to_string())
            .collect()
    };
    assert_eq!(layer(0), HashSet::from(["<0|1,4>".to_owned()]));
    assert_eq!(
        layer(1),
        HashSet::from(["<1|2,4>".to_owned(), "<0|1,eps>".to_owned()])
    );
    assert_eq!(
        layer(2),
        HashSet::from([
            "<2|2,5>".to_owned(),
            "<3|2,4>".to_owned(),
            "<1|2,eps>".to_owned()
        ])
    );
    assert!(layer(3).is_empty(), "plateau at k = 2 (Ex. 9)");
    assert_eq!(layer(4), HashSet::from(["<0|1,6>".to_owned()]));
    assert_eq!(layer(5), HashSet::from(["<1|2,6>".to_owned()]));
    assert!(layer(6).is_empty(), "collapse at k = 5");
}

/// Ex. 13: the 8-state context-insensitive overapproximation Z.
#[test]
fn fig1_z_has_exactly_eight_states() {
    let z = compute_z(&fig1::build());
    assert_eq!(z.states.len(), 8);
    assert!(z.states.contains(&vis(0, &[Some(1), Some(6)])));
    assert!(z.states.contains(&vis(1, &[Some(2), None])));
    assert!(!z.states.contains(&vis(2, &[Some(1), Some(5)])));
}

/// Ex. 14: G∩Z, the rejected plateau at 2, the collapse at 5.
#[test]
fn fig1_example14_run() {
    let cpds = fig1::build();
    let config = Alg3Config {
        use_state_collapse: false,
        ..Alg3Config::default()
    };
    let report = alg3_explicit(&cpds, &Property::True, &config).unwrap();
    assert_eq!(
        report.g_cap_z,
        vec![vis(0, &[Some(1), None]), vis(0, &[Some(1), Some(6)])]
    );
    assert_eq!(report.rejected_plateaus, vec![2]);
    assert_eq!(report.visible_growth.sizes(), &[1, 3, 6, 6, 7, 8, 8]);
    assert!(matches!(
        report.verdict,
        Verdict::Safe {
            k: 5,
            method: ConvergenceMethod::GeneratorTest
        }
    ));
}

/// The generator set predicate of Ex. 14, spot-checked.
#[test]
fn fig1_generator_set() {
    let g = GeneratorSet::from_cpds(&fig1::build());
    for v in [
        vis(0, &[Some(1), None]),
        vis(0, &[Some(1), Some(6)]),
        vis(0, &[Some(2), None]),
        vis(0, &[Some(2), Some(6)]),
    ] {
        assert!(g.contains(&v), "{v} must be a generator");
    }
    assert!(!g.contains(&vis(1, &[Some(1), Some(6)])));
    assert!(!g.contains(&vis(0, &[Some(1), Some(4)])));
}

/// Fig. 4: FCR verdicts for both running examples.
#[test]
fn fig4_fcr_verdicts() {
    assert!(check_fcr(&fig1::build()).holds());
    let report = check_fcr(&fig2::build());
    assert!(!report.holds());
    assert_eq!(report.offending_threads(), vec![0, 1]);
}

/// Ex. 8: ⟨1|4,9⟩ reachable within 2 contexts, not within 1; the
/// symbolic (Rk) sequence collapses at a small bound; the explicit
/// algorithms refuse the program.
#[test]
fn fig2_example8() {
    let cpds = fig2::build();
    let target = fig2::example8_state();

    let mut engine = SymbolicEngine::new(
        cpds.clone(),
        ExploreBudget::default(),
        SubsumptionMode::Exact,
    );
    engine.advance().unwrap();
    assert!(!engine.covers(&target), "not reachable with one context");
    engine.advance().unwrap();
    assert!(engine.covers(&target), "reachable with two contexts");

    let report = scheme1_symbolic(&cpds, &Property::True, &Scheme1Config::default()).unwrap();
    match report.verdict {
        Verdict::Safe { k, method } => {
            assert_eq!(method, ConvergenceMethod::SkCollapse);
            assert!(
                k <= 6,
                "paper reports R2 = R3; allow slack for the encoding, got {k}"
            );
        }
        other => panic!("expected collapse, got {other:?}"),
    }

    assert_eq!(
        scheme1_explicit(&cpds, &Property::True, &Scheme1Config::default()).unwrap_err(),
        CubaError::FcrRequired
    );
}

/// Alg. 3 over T(Sk) proves the Fig. 2 program safe (Table 2 row 6).
#[test]
fn fig2_symbolic_alg3_proves_safety() {
    let cpds = fig2::build();
    let property = Property::never_visible(fig2::unreachable_visible());
    let report = alg3_symbolic(&cpds, &property, &Alg3Config::default()).unwrap();
    assert!(report.verdict.is_safe(), "{:?}", report.verdict);
}

/// Fig. 7 (App. C): the PSA of the example PDS agrees with explicit
/// bounded search in both directions (on bounded stacks).
#[test]
fn fig7_psa_is_exact_on_short_stacks() {
    let pds = fig7::build();
    let init = fig7::initial_config();
    let psa = post_star_from_config(&pds, fig7::NUM_SHARED, &init).unwrap();
    let explicit: HashSet<_> = bounded_reach(&pds, &init, 16).into_iter().collect();
    for c in &explicit {
        assert!(psa.accepts_config(c), "missing {c}");
    }
    for q in 0..fig7::NUM_SHARED {
        let lang = psa.stack_language(SharedState(q));
        for word in lang.sample_words(10) {
            if word.len() <= 5 {
                let c = cuba::pds::PdsConfig::new(
                    SharedState(q),
                    cuba::pds::Stack::from_top_down(word.iter().map(|&x| StackSym(x))),
                );
                assert!(explicit.contains(&c), "PSA overapproximates: {c}");
            }
        }
    }
}

/// The two running examples' witness paths replay under the CPDS
/// semantics (the Ex. 8 path shape: 2 contexts to the target).
#[test]
fn witnesses_replay() {
    let cpds = fig1::build();
    let property = Property::never_visible(fig1::deep_visible());
    let report = alg3_explicit(&cpds, &property, &Alg3Config::default()).unwrap();
    match report.verdict {
        Verdict::Unsafe { k, witness } => {
            assert_eq!(k, 5);
            let w = witness.expect("explicit engines yield witnesses");
            assert!(w.replay(&cpds));
            assert!(w.num_contexts() <= 5);
            assert_eq!(w.end().visible(), fig1::deep_visible());
        }
        other => panic!("expected Unsafe, got {other:?}"),
    }
}
