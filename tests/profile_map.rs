//! Integration tests of the persistent profile map — the acceptance
//! criteria of the online-autotune milestone:
//!
//! * a second run of the Table 2 suite through a warm map explores no
//!   more live rounds than the cold run, at byte-identical verdict
//!   words (the learned schedules help or the defaults win);
//! * the map round-trips through its on-disk text format with the
//!   learned configs and provenance intact;
//! * concurrent serve clients asking about one novel system trigger
//!   exactly one tuning probe.

use std::sync::Arc;

use cuba::benchmarks::suite::table2_suite;
use cuba::core::{
    Portfolio, ProfileMap, Property, SchedulePolicy, SessionConfig, SuiteCache, Verdict,
};
use cuba::explore::ExploreBudget;
use cuba::pds::Cpds;

fn suite_config() -> SessionConfig {
    SessionConfig {
        budget: ExploreBudget {
            // Same cap as the other suite-level integration tests:
            // keeps the OOM row bounded in debug mode.
            max_symbolic_states: 10_000,
            ..ExploreBudget::default()
        },
        max_k: 24,
        schedule: SchedulePolicy::frontier_aware(),
        ..SessionConfig::new()
    }
}

fn suite_problems() -> Vec<(String, Cpds, Property)> {
    table2_suite()
        .into_iter()
        .map(|b| (b.label(), b.cpds, b.property))
        .collect()
}

/// One run's observable result: the verdict *word* per workload (the
/// invariant the map must preserve is the word, not the bound — the
/// convergence bound of a safe verdict legitimately differs by one
/// depending on which arm wins) plus the total live rounds paid.
fn run_suite(portfolio: &Portfolio, problems: &[(String, Cpds, Property)]) -> (Vec<String>, usize) {
    let cache = SuiteCache::new();
    let batch: Vec<(Cpds, Property)> = problems
        .iter()
        .map(|(_, cpds, property)| (cpds.clone(), property.clone()))
        .collect();
    let results = portfolio.run_suite_cached(batch, 4, &cache);
    let mut verdicts = Vec::new();
    let mut live_rounds = 0usize;
    for (label, result) in problems.iter().map(|(l, _, _)| l).zip(results) {
        // The OOM row errors by design at the test budget; an error is
        // part of the verdict word the map must preserve.
        verdicts.push(match &result {
            Ok(o) => match &o.verdict {
                Verdict::Safe { .. } => format!("{label}:safe"),
                Verdict::Unsafe { k, .. } => format!("{label}:unsafe@{k}"),
                Verdict::Undetermined { .. } => format!("{label}:undetermined"),
            },
            Err(e) => format!("{label}:error:{e}"),
        });
        if let Ok(outcome) = &result {
            live_rounds += outcome.rounds_explored;
        }
    }
    (verdicts, live_rounds)
}

/// Acceptance: learn the Table 2 suite into a map once, then compare a
/// cold (default-schedule) run against a warm (map-consulting) run —
/// byte-identical verdict words, no more live rounds. The map is also
/// pushed through its text format first, so what the warm run consults
/// is what a `--profile-map` file would deliver.
#[test]
fn warm_map_rerun_is_never_worse_than_cold() {
    let problems = suite_problems();
    let config = suite_config();

    let cold_portfolio = Portfolio::auto().with_config(config.clone());
    let (cold_verdicts, cold_rounds) = run_suite(&cold_portfolio, &problems);

    // Learn every fingerprint through a dedicated cache (the probe
    // shares layers within itself, not with the measured runs).
    let map = ProfileMap::new();
    let probes = cuba_bench::tune::ensure_profiles(&map, &problems, 4, &SuiteCache::new(), &config);
    assert!(probes > 0, "a fresh map must probe the novel suite");
    assert_eq!(map.stats().probes_started, probes);

    // Round-trip through the on-disk format: the warm run consults
    // what a saved file would deliver.
    let text = map.to_text();
    let reloaded = Arc::new(ProfileMap::parse(&text).expect("saved map must parse"));
    assert_eq!(reloaded.to_text(), text, "text format must round-trip");

    let warm_portfolio = Portfolio::auto()
        .with_config(config)
        .with_profile_map(reloaded.clone());
    let (warm_verdicts, warm_rounds) = run_suite(&warm_portfolio, &problems);

    assert_eq!(
        cold_verdicts, warm_verdicts,
        "learned schedules must preserve every verdict word"
    );
    assert!(
        warm_rounds <= cold_rounds,
        "the warm rerun must explore no more live rounds: warm {warm_rounds} vs cold {cold_rounds}"
    );
    // The warm run consulted the map for every workload.
    assert!(reloaded.stats().hits >= problems.len());
}

/// Concurrent serve clients asking about one novel system race into
/// the broker's probe gate: exactly one of them runs the tuning probe,
/// the rest fall back to the configured schedule without waiting, and
/// every later client hits the learned profile.
#[test]
fn concurrent_clients_trigger_exactly_one_probe() {
    let map = Arc::new(ProfileMap::new());
    let config = cuba_serve::ServeConfig {
        profile_map: Some(map.clone()),
        ..cuba_serve::ServeConfig::default()
    };
    let broker = Arc::new(cuba_serve::Broker::new(config));

    let cpds = cuba::benchmarks::fig1::build();
    let properties = vec![("default".to_owned(), Property::True)];
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let broker = broker.clone();
            let cpds = cpds.clone();
            let properties = properties.clone();
            std::thread::spawn(move || broker.ensure_profiles(&cpds, &properties))
        })
        .collect();
    for client in clients {
        client.join().expect("client thread panicked");
    }

    let stats = map.stats();
    assert_eq!(
        stats.probes_started, 1,
        "one fingerprint, many clients: exactly one probe"
    );
    assert_eq!(stats.probes_learned, 1);
    assert_eq!(stats.entries, 1);
    // A straggler after the probe finished hits the learned profile
    // without probing again.
    broker.ensure_profiles(&cpds, &properties);
    assert_eq!(map.stats().probes_started, 1);
    assert!(map.stats().hits >= 1);
}
