//! Verdict preservation of the static pre-analysis (`cuba lint`'s
//! reduction pipeline, `--reduce` on the CLI): over the full bench
//! suite — every Table 2 row plus the `fig1-multi/*` block — running
//! the reduced system must produce the *identical* verdict (word,
//! bound, convergence method) as the original, and never explore more
//! rounds.

use cuba::core::{CubaError, CubaOutcome, SchedulePolicy, Verdict};
use cuba_bench::harness::{bench_config, bench_suite, run_iteration, verdict_word};

/// The comparable part of a result: verdict word, bound and method —
/// everything except the witness (whose shape may legitimately differ
/// when dead transitions are gone) and wall-clock fields.
fn signature(result: &Result<CubaOutcome, CubaError>) -> String {
    let word = verdict_word(result);
    match result {
        Ok(outcome) => match &outcome.verdict {
            Verdict::Safe { k, method } => format!("{word} k={k} method={method}"),
            Verdict::Unsafe { k, .. } => format!("{word} k={k}"),
            Verdict::Undetermined { reason } => format!("{word} reason={reason}"),
        },
        Err(error) => format!("{word} {error}"),
    }
}

#[test]
fn reduction_preserves_every_suite_verdict() {
    let problems = bench_suite();
    let reduced: Vec<_> = problems
        .iter()
        .map(|(label, cpds, property)| {
            let reduction = cuba::reduce::reduce(cpds, std::slice::from_ref(property))
                .unwrap_or_else(|e| panic!("{label}: reduce failed: {e}"));
            (label.clone(), reduction.cpds, property.clone())
        })
        .collect();

    let portfolio =
        cuba::core::Portfolio::auto().with_config(bench_config(SchedulePolicy::default()));
    // workers = 1 keeps the shared-cache replay pattern (the
    // fig1-multi block) deterministic, so per-row exploration counts
    // are comparable between the two runs.
    let (original_results, _) = run_iteration(&portfolio, &problems, 1);
    let (reduced_results, _) = run_iteration(&portfolio, &reduced, 1);

    assert_eq!(original_results.len(), reduced_results.len());
    for ((label, _, _), (original, reduced)) in problems
        .iter()
        .zip(original_results.iter().zip(reduced_results.iter()))
    {
        assert_eq!(
            signature(original),
            signature(reduced),
            "{label}: reduction changed the verdict"
        );
        if let (Ok(original), Ok(reduced)) = (original, reduced) {
            assert!(
                reduced.rounds_explored <= original.rounds_explored,
                "{label}: reduction explored more rounds ({} > {})",
                reduced.rounds_explored,
                original.rounds_explored
            );
        }
    }
}

/// Checks a witness's *state path* against a CPDS, ignoring the
/// recorded action indices: removing dead actions compacts each
/// thread's action list, so a reduced-system witness carries reduced
/// indices, but its states must still be a legal run of the original.
fn state_path_replays(witness: &cuba::explore::Witness, cpds: &cuba::pds::Cpds) -> bool {
    let mut current = witness.start.clone();
    for step in &witness.steps {
        let mut ok = false;
        cpds.successors_of_thread_into(&current, step.thread.0, &mut |succ, _| {
            if succ == step.state {
                ok = true;
            }
        });
        if !ok {
            return false;
        }
        current = step.state.clone();
    }
    true
}

/// Witnesses found on the reduced system are real behaviors of the
/// *original* system: the reduction only ever deletes transitions.
#[test]
fn reduced_witnesses_replay_on_the_original() {
    let portfolio =
        cuba::core::Portfolio::auto().with_config(bench_config(SchedulePolicy::default()));
    let mut checked = 0;
    for (label, cpds, property) in bench_suite() {
        let reduction = cuba::reduce::reduce(&cpds, std::slice::from_ref(&property))
            .unwrap_or_else(|e| panic!("{label}: reduce failed: {e}"));
        if !reduction.stats.changed() {
            continue;
        }
        let reduced_cpds = reduction.cpds;
        let problems = vec![(label.clone(), reduced_cpds.clone(), property)];
        let (results, _) = run_iteration(&portfolio, &problems, 1);
        if let Ok(outcome) = &results[0] {
            if let Verdict::Unsafe {
                witness: Some(witness),
                ..
            } = &outcome.verdict
            {
                assert!(
                    witness.replay(&reduced_cpds),
                    "{label}: witness must replay on the system it was found on"
                );
                assert!(
                    state_path_replays(witness, &cpds),
                    "{label}: reduced witness states must be a legal run of the original"
                );
                checked += 1;
            }
        }
    }
    // The suite has unsafe rows; if none of them reduced, the test
    // still passes — the equivalence test above covers them.
    let _ = checked;
}
