//! Property-based cross-validation of the independent engines and
//! the paper's lemmas on randomly generated systems:
//!
//! * explicit `T(Rk)` = symbolic `T(Sk)` at every bound,
//! * Lemma 12: `T(Rk) ⊆ Z`,
//! * layered monotonicity and stutter-freeness of `(Rk)` (Lemma 7),
//! * witnesses replay and respect their layer's context bound,
//! * Scheme 1 and Alg. 3 agree whenever both conclude.
//!
//! Systems come from the seeded generator in
//! `cuba::benchmarks::random`; each test sweeps a fixed seed range so
//! failures are directly reproducible.

use std::collections::HashSet;

use cuba::benchmarks::random::{random_cpds, RandomCpdsConfig};
use cuba::core::{
    alg3_explicit, check_fcr, compute_z, scheme1_explicit, Alg3Config, Property, Scheme1Config,
    Verdict,
};
use cuba::explore::{ExplicitEngine, ExploreBudget, SubsumptionMode, SymbolicEngine};

fn small_budget() -> ExploreBudget {
    ExploreBudget {
        max_states: 60_000,
        max_stack_depth: 40,
        max_states_per_context: 30_000,
        max_symbolic_states: 4_000,
        ..ExploreBudget::default()
    }
}

/// The central cross-validation: two independent engines must see the
/// same visible states at every context bound.
#[test]
fn explicit_and_symbolic_visible_sets_agree() {
    for seed in 0..24u64 {
        let cfg = RandomCpdsConfig::shrinking();
        let cpds = random_cpds(&cfg, seed);
        let mut explicit = ExplicitEngine::new(cpds.clone(), small_budget());
        let mut symbolic = SymbolicEngine::new(cpds, small_budget(), SubsumptionMode::Exact);
        for _ in 0..4 {
            if explicit.advance().is_err() || symbolic.advance().is_err() {
                break;
            }
            let ev: HashSet<_> = explicit.visible_total().cloned().collect();
            let sv: HashSet<_> = symbolic.visible_total().cloned().collect();
            assert_eq!(ev, sv, "seed {seed}");
        }
    }
}

/// Lemma 12: every reachable visible state lies in Z.
#[test]
fn visible_reachability_is_inside_z() {
    for seed in 0..24u64 {
        let cfg = if seed % 2 == 0 {
            RandomCpdsConfig {
                push_probability: 0.2,
                ..RandomCpdsConfig::default()
            }
        } else {
            RandomCpdsConfig::shrinking()
        };
        let cpds = random_cpds(&cfg, seed);
        let z = compute_z(&cpds);
        let mut engine = ExplicitEngine::new(cpds, small_budget());
        for _ in 0..4 {
            if engine.advance().is_err() {
                break; // FCR violation hit the budget — fine, Z was
                       // still an overapproximation of what we saw.
            }
        }
        for v in engine.visible_total() {
            assert!(z.states.contains(v), "seed {seed}: Z misses {v}");
        }
    }
}

/// Monotone layers; collapse is permanent (Lemma 7's consequence).
#[test]
fn layers_are_monotone_and_collapse_sticks() {
    for seed in 0..24u64 {
        let cpds = random_cpds(&RandomCpdsConfig::shrinking(), seed);
        let mut engine = ExplicitEngine::new(cpds, small_budget());
        let mut collapsed_at = None;
        let mut previous = 1usize;
        for k in 1..=6 {
            let summary = engine.advance().unwrap();
            assert!(engine.num_states() >= previous, "seed {seed}");
            previous = engine.num_states();
            if summary.new_states == 0 && collapsed_at.is_none() {
                collapsed_at = Some(k);
            }
            if let Some(c) = collapsed_at {
                if k > c {
                    assert_eq!(
                        summary.new_states, 0,
                        "seed {seed}: collapse must be permanent"
                    );
                }
            }
        }
    }
}

/// Witness paths replay and use no more contexts than their layer.
#[test]
fn witnesses_replay_within_bounds() {
    for seed in 0..24u64 {
        let cpds = random_cpds(&RandomCpdsConfig::shrinking(), seed);
        let mut engine = ExplicitEngine::new(cpds.clone(), small_budget());
        for _ in 0..3 {
            engine.advance().unwrap();
        }
        for k in 0..=3usize {
            for state in engine.layer(k).cloned().collect::<Vec<_>>() {
                let id = engine.find(&state).unwrap();
                let w = engine.witness(id);
                assert!(w.replay(&cpds), "seed {seed}: invalid witness for {state}");
                assert!(w.num_contexts() <= k, "seed {seed}");
            }
        }
    }
}

/// When both explicit algorithms conclude, they agree on safety.
#[test]
fn scheme1_and_alg3_agree() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let cpds = random_cpds(&RandomCpdsConfig::shrinking(), seed);
        if !check_fcr(&cpds).holds() {
            continue;
        }
        // Pick a target from the finite visible domain: reachable for
        // some seeds, unreachable for others.
        let target = cpds.all_visible_states().into_iter().last().unwrap();
        let property = Property::never_visible(target);
        let s1 = scheme1_explicit(
            &cpds,
            &property,
            &Scheme1Config {
                budget: small_budget(),
                max_k: 12,
                ..Scheme1Config::default()
            },
        );
        let a3 = alg3_explicit(
            &cpds,
            &property,
            &Alg3Config {
                budget: small_budget(),
                max_k: 12,
                ..Alg3Config::default()
            },
        );
        let (Ok(s1), Ok(a3)) = (s1, a3) else {
            continue;
        };
        checked += 1;
        match (&s1.verdict, &a3.verdict) {
            (Verdict::Safe { .. }, Verdict::Unsafe { .. })
            | (Verdict::Unsafe { .. }, Verdict::Safe { .. }) => {
                panic!(
                    "seed {seed}: conflicting verdicts: {:?} vs {:?}",
                    s1.verdict, a3.verdict
                );
            }
            (Verdict::Unsafe { k: k1, .. }, Verdict::Unsafe { k: k2, .. }) => {
                // Both tight: the minimal bug bound is unique.
                assert_eq!(k1, k2, "seed {seed}");
            }
            _ => {}
        }
    }
    assert!(checked >= 10, "too few conclusive runs: {checked}");
}

/// The symbolic engine covers exactly the explicitly reached global
/// states (sampled), not more, on shrink-only systems.
#[test]
fn symbolic_covers_explicit_states() {
    for seed in 0..16u64 {
        let cpds = random_cpds(&RandomCpdsConfig::shrinking(), seed);
        let mut explicit = ExplicitEngine::new(cpds.clone(), small_budget());
        let mut symbolic = SymbolicEngine::new(cpds, small_budget(), SubsumptionMode::Exact);
        for _ in 0..3 {
            explicit.advance().unwrap();
            symbolic.advance().unwrap();
        }
        for state in explicit.states().iter().take(200) {
            assert!(
                symbolic.covers(state),
                "seed {seed}: symbolic misses {state}"
            );
        }
    }
}

/// Deterministic companion: visible sets also agree on a pushy system
/// that the explicit engine can still handle (no FCR guarantee, tiny
/// depth) — exercises pushes through both pipelines.
#[test]
fn pushy_agreement_specific_seeds() {
    let cfg = RandomCpdsConfig {
        push_probability: 0.25,
        actions_per_thread: 5,
        ..RandomCpdsConfig::default()
    };
    let mut checked = 0;
    for seed in 0..40u64 {
        let cpds = random_cpds(&cfg, seed);
        if !check_fcr(&cpds).holds() {
            continue;
        }
        let mut explicit = ExplicitEngine::new(cpds.clone(), small_budget());
        let mut symbolic = SymbolicEngine::new(cpds, small_budget(), SubsumptionMode::Exact);
        let mut ok = true;
        for _ in 0..4 {
            if explicit.advance().is_err() || symbolic.advance().is_err() {
                ok = false;
                break;
            }
            let e: HashSet<_> = explicit.visible_total().cloned().collect();
            let s: HashSet<_> = symbolic.visible_total().cloned().collect();
            assert_eq!(e, s, "divergence at seed {seed}");
        }
        if ok {
            checked += 1;
        }
    }
    assert!(
        checked >= 5,
        "need enough FCR systems with pushes, got {checked}"
    );
}
