//! Integration tests of the `cuba` command-line interface, driven
//! against the shipped sample inputs.

use std::process::Command;

fn cuba(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cuba"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn verify_safe_cpds_exits_zero() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("safe for any resource amount"));
    assert!(stdout.contains("k=5"));
}

#[test]
fn verify_unsafe_bp_exits_one_with_witness() {
    let (stdout, _, code) = cuba(&["verify", "samples/ticket.bp"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("error reachable"));
    assert!(stdout.contains("counterexample"));
}

#[test]
fn fcr_reports_per_thread() {
    let (stdout, _, code) = cuba(&["fcr", "samples/fig2.bp"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("FCR fails"));
    assert!(stdout.contains("thread 0"));
    assert!(stdout.contains("infinite"));
}

#[test]
fn info_prints_model_shape() {
    let (stdout, _, code) = cuba(&["info", "samples/fig1.cpds"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("threads: 2"));
    assert!(stdout.contains("initial state: <0|1,4>"));
}

#[test]
fn symbolic_engine_flag() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig2.bp", "--engine", "symbolic"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("safe for any resource amount"));
}

#[test]
fn explicit_engine_rejects_non_fcr_input() {
    let (_, stderr, code) = cuba(&["verify", "samples/fig2.bp", "--engine", "explicit"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("finite context reachability"));
}

#[test]
fn never_shared_property_override() {
    // Shared state 3 of fig1 is reachable (⟨3|2,46⟩ at k = 2).
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds", "--never-shared", "3"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("resource amount 2"));
}

#[test]
fn bad_usage_is_reported() {
    let (_, stderr, code) = cuba(&["verify"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));

    let (_, stderr, code) = cuba(&["frobnicate", "samples/fig1.cpds"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));

    let (_, stderr, code) = cuba(&["verify", "README.md"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown extension"));
}
