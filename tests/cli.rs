//! Integration tests of the `cuba` command-line interface, driven
//! against the shipped sample inputs.

use std::process::Command;

fn cuba(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cuba"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn verify_safe_cpds_exits_zero() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("safe for any resource amount"));
    assert!(stdout.contains("k=5"));
}

#[test]
fn verify_unsafe_bp_exits_one_with_witness() {
    let (stdout, _, code) = cuba(&["verify", "samples/ticket.bp"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("error reachable"));
    assert!(stdout.contains("counterexample"));
}

#[test]
fn fcr_reports_per_thread() {
    let (stdout, _, code) = cuba(&["fcr", "samples/fig2.bp"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("FCR fails"));
    assert!(stdout.contains("thread 0"));
    assert!(stdout.contains("infinite"));
}

#[test]
fn info_prints_model_shape() {
    let (stdout, _, code) = cuba(&["info", "samples/fig1.cpds"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("threads: 2"));
    assert!(stdout.contains("initial state: <0|1,4>"));
}

#[test]
fn symbolic_engine_flag() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig2.bp", "--engine", "symbolic"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("safe for any resource amount"));
}

#[test]
fn explicit_engine_rejects_non_fcr_input() {
    let (_, stderr, code) = cuba(&["verify", "samples/fig2.bp", "--engine", "explicit"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("finite context reachability"));
}

#[test]
fn never_shared_property_override() {
    // Shared state 3 of fig1 is reachable (⟨3|2,46⟩ at k = 2).
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds", "--never-shared", "3"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("resource amount 2"));
}

#[test]
fn bad_usage_is_reported() {
    let (_, stderr, code) = cuba(&["verify"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));

    let (_, stderr, code) = cuba(&["frobnicate", "samples/fig1.cpds"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));

    let (_, stderr, code) = cuba(&["verify", "README.md"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown extension"));
}

#[test]
fn unknown_command_is_rejected_before_loading_the_file() {
    // The file does not exist: a bad subcommand must be reported
    // without ever trying to open (let alone parse) the model.
    let (_, stderr, code) = cuba(&["bogus", "does-not-exist.bp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
    assert!(!stderr.contains("does-not-exist"));

    // Same for a bad option: rejected before the file is read.
    let (_, stderr, code) = cuba(&["verify", "does-not-exist.bp", "--bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown option"));
    assert!(!stderr.contains("does-not-exist"));
}

#[test]
fn info_and_fcr_reject_trailing_options() {
    let (_, stderr, code) = cuba(&["info", "samples/fig1.cpds", "--json"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("takes no options"));

    let (_, stderr, code) = cuba(&["fcr", "samples/fig2.bp", "extra-arg"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("takes no options"));
}

#[test]
fn json_output_is_machine_readable() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds", "--json"]);
    assert_eq!(code, Some(0));
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"verdict\":\"safe\""));
    assert!(line.contains("\"k\":5"));
    assert!(line.contains("\"fcr\":true"));
    assert!(line.contains("\"duration_ms\":"));
    // The per-round growth log: one entry per computed bound of the
    // winning engine, k = 0..=6 on Fig. 1.
    assert!(line.contains("\"growth\":["));
    assert!(line.contains("\"event\":\"new-plateau\""));
    for k in 0..=6 {
        assert!(line.contains(&format!("\"k\":{k}")), "missing round {k}");
    }

    // Unsafe runs report the witness size.
    let (stdout, _, code) = cuba(&["verify", "samples/ticket.bp", "--json"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"verdict\":\"unsafe\""));
    assert!(stdout.contains("\"witness_steps\":"));
}

/// `--schedule` selects the arm scheduling policy; both spellings
/// verify Fig. 1 and the JSON reports the policy plus the per-arm
/// growth logs with per-round costs.
#[test]
fn schedule_flag_and_per_arm_logs() {
    for (name, flag) in [("frontier", "frontier"), ("round-robin", "round-robin")] {
        let (stdout, _, code) =
            cuba(&["verify", "samples/fig1.cpds", "--schedule", flag, "--json"]);
        assert_eq!(code, Some(0), "--schedule {flag}");
        let line = stdout.trim();
        assert!(line.contains(&format!("\"schedule\":\"{name}\"")));
        // Per-arm growth logs: every arm of the §6 race appears with
        // its own (possibly partial) log, each round carrying its
        // cost.
        assert!(line.contains("\"arms\":["));
        assert!(line.contains("\"log\":["));
        assert!(line.contains("\"delta_states\":"));
        assert!(line.contains("\"elapsed_us\":"));
        assert!(line.contains("\"round_wall_us\":"));
    }

    let (_, stderr, code) = cuba(&["verify", "samples/fig1.cpds", "--schedule", "fastest"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad schedule"));
}

/// The extended `--schedule` grammar: inline `frontier:key=value`
/// tunings and profile files written by `cuba tune`'s serializer.
#[test]
fn schedule_profiles_and_inline_tunings() {
    // Inline tuning parses and verifies.
    let (stdout, _, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--schedule",
        "frontier:window=2,bonus_turns=1",
        "--json",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"schedule\":\"frontier\""));
    assert!(stdout.contains("\"verdict\":\"safe\""));

    // A profile file in the `cuba tune` output format loads the same
    // way; verdicts do not depend on the tuning.
    let profile = std::env::temp_dir().join("cuba-cli-test.profile");
    std::fs::write(
        &profile,
        "# test profile\nname = cli-test\nwindow = 2\nbonus_turns = 1\n",
    )
    .expect("profile written");
    let spec = format!("frontier:{}", profile.display());
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds", "--schedule", &spec, "--json"]);
    assert_eq!(code, Some(0), "profile file loads");
    assert!(stdout.contains("\"verdict\":\"safe\""));
    assert!(stdout.contains("\"k\":5"));

    // Unknown keys and missing files are option errors (exit 2).
    let (_, stderr, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--schedule",
        "frontier:warp=9",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown tuning key"));
    let (_, stderr, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--schedule",
        "frontier:/no/such/profile",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("cannot read profile"));
}

/// `cuba bench` / `cuba tune` argument validation (the measured paths
/// run the full suite and are covered by the harness unit tests and
/// the CI bench job; a debug-build suite iteration is too slow here).
#[test]
fn bench_and_tune_validate_arguments() {
    let (_, stderr, code) = cuba(&["bench", "--gate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--gate needs --compare"));
    let (_, stderr, code) = cuba(&["bench", "--samples", "0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad --samples"));
    let (_, stderr, code) = cuba(&["bench", "--ratio", "-3"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad --ratio"));
    let (_, stderr, code) = cuba(&["bench", "--turbo"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown option"));
    let (_, stderr, code) = cuba(&["tune", "--out"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--out needs a file argument"));
    let (_, stderr, code) = cuba(&["tune", "--passes", "zero"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad --passes"));
}

/// Repeated `--property`: one invocation, many properties, one JSON
/// record per property — sharing a single layered exploration, so
/// later records replay instead of exploring. The exit code is the
/// worst verdict (unsafe → 1).
#[test]
fn repeated_property_flag_shares_exploration() {
    let (stdout, _, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--property",
        "true",
        "--property",
        "never-visible:1|2,6",
        "--property",
        "never-shared:2",
        "--json",
    ]);
    assert_eq!(code, Some(1), "unsafe dominates the exit code");
    let lines: Vec<&str> = stdout.trim().lines().collect();
    assert_eq!(lines.len(), 3, "one JSON record per property");
    assert!(lines[0].contains("\"property\":\"true\""));
    assert!(lines[0].contains("\"verdict\":\"safe\""));
    assert!(lines[1].contains("\"property\":\"never-visible:1|2,6\""));
    assert!(lines[1].contains("\"verdict\":\"unsafe\""));
    assert!(lines[1].contains("\"k\":5"));
    assert!(lines[2].contains("\"verdict\":\"unsafe\""));
    assert!(lines[2].contains("\"k\":2"));
    // Shared-exploration counters: the first property explores, the
    // later ones mostly replay (every record carries both fields).
    for line in &lines {
        assert!(line.contains("\"rounds_explored\":"));
        assert!(line.contains("\"rounds_replayed\":"));
    }
    assert!(
        lines[1].contains("\"replayed\":true"),
        "the second property's growth log must contain replayed rounds"
    );

    // Human-readable output labels each property.
    let (stdout, _, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--property",
        "true",
        "--property",
        "never-shared:2",
    ]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("property true:"));
    assert!(stdout.contains("property never-shared:2:"));

    // Bad specs are rejected up front.
    let (_, stderr, code) = cuba(&["verify", "samples/fig1.cpds", "--property", "sometimes"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad --property"));
}

/// `cuba lint`: the purpose-built dead-code sample yields true
/// diagnostics, the clean samples yield none (the vacuous-property
/// *notes* on assert-free/invariantly-safe programs are true
/// positives), and warnings never fail the exit code.
#[test]
fn lint_reports_dead_code_and_stays_quiet_on_clean_models() {
    let (stdout, _, code) = cuba(&["lint", "samples/deadcode.bp"]);
    assert_eq!(code, Some(0), "warnings do not fail the lint");
    assert!(stdout.contains("write-only-variable"));
    assert!(stdout.contains("`ghost` is assigned but never read"));
    assert!(stdout.contains("dead-branch"));
    assert!(stdout.contains("unreachable code"));
    assert!(stdout.contains("5 warn"));

    let (stdout, _, code) = cuba(&["lint", "samples/fig1.cpds"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("no diagnostics"));

    let (stdout, _, code) = cuba(&["lint", "samples/ticket.bp"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("no diagnostics"));

    // JSON output: machine-readable lints plus the reduction stats.
    let (stdout, _, code) = cuba(&["lint", "samples/deadcode.bp", "--json"]);
    assert_eq!(code, Some(0));
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"lints\":["));
    assert!(line.contains("\"code\":\"write-only-variable\""));
    assert!(line.contains("\"level\":\"warn\""));
    assert!(line.contains("\"line\":"));
    assert!(line.contains("\"reduction\":{"));

    // A property naming a nonexistent state is a deny: exit 1.
    let (stdout, _, code) = cuba(&["lint", "samples/fig1.cpds", "--property", "never-shared:99"]);
    assert_eq!(code, Some(1), "deny lints fail the exit code");
    assert!(stdout.contains("unknown-state"));
}

/// `--reduce` on verify: identical verdict, and the JSON record
/// carries the reduction statistics.
#[test]
fn verify_reduce_flag_preserves_verdicts() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds", "--reduce", "--json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"verdict\":\"safe\""));
    assert!(stdout.contains("\"k\":5"));
    assert!(stdout.contains("\"reduction\":{"));
    assert!(stdout.contains("\"removed_transitions\":"));

    let (stdout, _, code) = cuba(&["verify", "samples/ticket.bp", "--reduce", "--json"]);
    assert_eq!(code, Some(1), "unsafe verdict survives reduction");
    assert!(stdout.contains("\"verdict\":\"unsafe\""));

    // Invalid properties are rejected at session start, reduced or
    // not — never a vacuous `safe`.
    let (_, stderr, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--property",
        "never-shared:99",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("invalid property"));
}

#[test]
fn trace_streams_rounds_to_stderr() {
    let (stdout, stderr, code) = cuba(&["verify", "samples/fig1.cpds", "--trace"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("safe for any resource amount"));
    assert!(stderr.contains("[trace]"));
    assert!(stderr.contains("round k=5"));
    assert!(stderr.contains("concluded"));
}

#[test]
fn trace_out_writes_a_trace_that_trace_check_accepts() {
    let dir = std::env::temp_dir().join(format!("cuba-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("verify-trace.json");
    let path = path.to_str().expect("utf-8 temp path");

    let (stdout, stderr, code) = cuba(&["verify", "samples/fig1.cpds", "--trace-out", path]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("safe for any resource amount"));
    assert!(stderr.contains("trace written to"));

    let (stdout, _, code) = cuba(&["trace-check", path]);
    assert_eq!(code, Some(0), "stdout: {stdout}");
    assert!(stdout.contains("valid Chrome trace"));
    // The catalogue lists the portfolio and saturation spans.
    for span in [
        "round",
        "wave",
        "merge",
        "ensure_layer",
        "schedule-decision",
    ] {
        assert!(
            stdout.contains(&format!("  {span}: ")),
            "missing {span} in:\n{stdout}"
        );
    }

    // A corrupted trace is rejected with the path in the message.
    let broken = dir.join("broken.json");
    std::fs::write(&broken, "{\"traceEvents\":3}").expect("write");
    let (_, stderr, code) = cuba(&["trace-check", broken.to_str().expect("utf-8")]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("traceEvents"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `cuba snapshot` → `verify --from-snapshot`: the offline produce /
/// consume round trip yields identical verdicts with the recorded
/// bounds replayed; mismatched, truncated, and missing files are
/// rejected with the path named and no content echoed.
#[test]
fn snapshot_produce_consume_round_trip() {
    let dir = std::env::temp_dir().join(format!("cuba-cli-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("fig1.cubasnap");
    let snap = snap.to_str().expect("utf-8 temp path");

    let (stdout, _, code) = cuba(&[
        "snapshot",
        "samples/fig1.cpds",
        "--out",
        snap,
        "--max-k",
        "8",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("snapshot written to"), "{stdout}");
    assert!(stdout.contains("explicit"), "FCR holds on fig1: {stdout}");

    // Consuming the snapshot seeds the shared exploration: identical
    // verdict and bound, with replayed rounds in the record.
    let (stdout, stderr, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--from-snapshot",
        snap,
        "--json",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("\"verdict\":\"safe\""));
    assert!(stdout.contains("\"k\":5"));
    assert!(stderr.contains("seeded the explicit layers"), "{stderr}");
    assert!(stdout.contains("\"replayed\":true"), "{stdout}");

    // A missing --out is rejected before the model file is touched.
    let (_, stderr, code) = cuba(&["snapshot", "does-not-exist.cpds"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--out"));
    assert!(!stderr.contains("does-not-exist"));

    // A snapshot of a *different* system fails the structural
    // identity check (same discipline as the cache's collision
    // handling), with the offending file named.
    let other = dir.join("fig2.cubasnap");
    let other = other.to_str().expect("utf-8 temp path");
    let (_, _, code) = cuba(&[
        "snapshot",
        "samples/fig2.bp",
        "--out",
        other,
        "--max-k",
        "8",
    ]);
    assert_eq!(code, Some(0));
    let (_, stderr, code) = cuba(&["verify", "samples/fig1.cpds", "--from-snapshot", other]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("fingerprint mismatch"), "stderr: {stderr}");

    // A truncated file is rejected with an offset-numbered error.
    let bytes = std::fs::read(snap).expect("snapshot bytes");
    let broken = dir.join("broken.cubasnap");
    std::fs::write(&broken, &bytes[..20]).expect("truncate");
    let (_, stderr, code) = cuba(&[
        "verify",
        "samples/fig1.cpds",
        "--from-snapshot",
        broken.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("snapshot offset"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timeout_yields_undetermined_exit_code() {
    // A zero-second deadline trips before the first round; the
    // verdict is undetermined (exit 3), not an error (exit 2).
    let (stdout, _, code) = cuba(&["verify", "samples/fig2.bp", "--timeout", "0"]);
    assert_eq!(code, Some(3));
    assert!(stdout.contains("undetermined"));

    let (_, stderr, code) = cuba(&["verify", "samples/fig1.cpds", "--timeout", "abc"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("bad --timeout"));
}

#[test]
fn parallel_flag_agrees_with_round_robin() {
    let (stdout, _, code) = cuba(&["verify", "samples/fig1.cpds", "--parallel"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("safe for any resource amount"));
    assert!(stdout.contains("k=5"));
}
