//! Integration tests of the redesigned public API: the `Engine`
//! trait's round-stepping must be observationally equivalent to the
//! classic monolithic loops, sessions must stream one round event per
//! computed bound, cancellation and deadlines must stop work
//! cooperatively, and the portfolio race must agree with the fused
//! driver on both running examples.

use std::time::Duration;

use cuba::benchmarks::{fig1, fig2};
use cuba::core::{
    alg3_explicit, alg3_symbolic, build_engine, scheme1_symbolic, Alg3Config, AnalysisSession,
    Cuba, CubaConfig, EngineKind, EngineParams, Portfolio, Property, RoundCtx, RoundOutcome,
    Scheme1Config, SessionConfig, SessionEvent, Verdict,
};
use cuba::explore::{CancelToken, ExploreBudget, Interrupt};
use cuba::pds::{SharedState, StackSym, VisibleState};

fn vis(q: u32, tops: &[Option<u32>]) -> VisibleState {
    VisibleState::new(
        SharedState(q),
        tops.iter().map(|t| t.map(StackSym)).collect(),
    )
}

/// Drives any engine kind to conclusion through the trait object
/// surface, returning (verdict, rounds, states, growth sizes).
fn drive(
    kind: EngineKind,
    cpds: &cuba::pds::Cpds,
    property: &Property,
    fuse: bool,
) -> (Verdict, usize, usize, Vec<usize>) {
    let params = EngineParams {
        fuse_collapse: fuse,
        ..EngineParams::default()
    };
    let mut engine = build_engine(kind, cpds, property, &params).unwrap();
    let mut ctx = RoundCtx::new();
    let verdict = loop {
        if let RoundOutcome::Concluded { verdict, .. } = engine.step(&mut ctx).unwrap() {
            break verdict;
        }
    };
    (
        verdict,
        engine.rounds(),
        engine.states(),
        engine.growth().sizes().to_vec(),
    )
}

/// Equivalence on Fig. 1: stepping Alg. 3 through the trait matches
/// the monolithic `alg3_explicit` (verdict, rounds, states, growth).
#[test]
fn alg3_stepping_matches_monolithic_on_fig1() {
    let cpds = fig1::build();
    let report = alg3_explicit(&cpds, &Property::True, &Alg3Config::default()).unwrap();
    let (verdict, rounds, states, growth) =
        drive(EngineKind::Alg3Explicit, &cpds, &Property::True, true);
    assert_eq!(verdict, report.verdict);
    assert_eq!(rounds, report.rounds);
    assert_eq!(states, report.states);
    assert_eq!(growth, report.visible_growth.sizes());
}

/// The same equivalence for the symbolic engines on Fig. 2 (where the
/// explicit ones are inapplicable).
#[test]
fn symbolic_stepping_matches_monolithic_on_fig2() {
    let cpds = fig2::build();
    let a3 = alg3_symbolic(&cpds, &Property::True, &Alg3Config::default()).unwrap();
    let (verdict, rounds, states, growth) =
        drive(EngineKind::Alg3Symbolic, &cpds, &Property::True, true);
    assert_eq!(verdict, a3.verdict);
    assert_eq!(rounds, a3.rounds);
    assert_eq!(states, a3.states);
    assert_eq!(growth, a3.visible_growth.sizes());

    let s1 = scheme1_symbolic(&cpds, &Property::True, &Scheme1Config::default()).unwrap();
    let (verdict, rounds, states, growth) =
        drive(EngineKind::Scheme1Symbolic, &cpds, &Property::True, true);
    assert_eq!(verdict, s1.verdict);
    assert_eq!(rounds, s1.rounds);
    assert_eq!(states, s1.states);
    assert_eq!(growth, s1.growth.sizes());
}

/// An unsafe problem concludes with the same bound through the
/// stepped engine and the monolithic loop, witness included.
#[test]
fn unsafe_equivalence_on_fig1() {
    let cpds = fig1::build();
    let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
    let report = alg3_explicit(&cpds, &property, &Alg3Config::default()).unwrap();
    let (verdict, ..) = drive(EngineKind::Alg3Explicit, &cpds, &property, true);
    match (&report.verdict, &verdict) {
        (Verdict::Unsafe { k: k1, witness: w1 }, Verdict::Unsafe { k: k2, witness: w2 }) => {
            assert_eq!(k1, k2);
            assert!(w1.is_some() && w2.is_some());
            assert!(w2.as_ref().unwrap().replay(&cpds));
        }
        other => panic!("expected two Unsafe verdicts, got {other:?}"),
    }
}

/// The session streams at least one RoundCompleted per computed bound
/// `k` (the acceptance criterion), for every arm in the lineup.
#[test]
fn session_streams_one_event_per_bound_per_arm() {
    let portfolio = Portfolio::auto();
    let mut session = portfolio.session(fig1::build(), Property::True).unwrap();
    let mut per_engine: std::collections::HashMap<String, Vec<usize>> = Default::default();
    for event in &mut session {
        if let SessionEvent::RoundCompleted { engine, k, .. } = &event {
            per_engine.entry(engine.to_string()).or_default().push(*k);
        }
    }
    let outcome = session.outcome().unwrap().as_ref().unwrap().clone();
    assert!(matches!(outcome.verdict, Verdict::Safe { k: 5, .. }));
    // The winning Alg. 3 arm computed bounds 0..=6; every arm's
    // per-bound sequence is gapless from 0.
    assert_eq!(per_engine["Alg3(T(Rk))"], vec![0, 1, 2, 3, 4, 5, 6]);
    for (engine, rounds) in &per_engine {
        let expected: Vec<usize> = (0..rounds.len()).collect();
        assert_eq!(rounds, &expected, "gapless rounds for {engine}");
    }
    assert!(per_engine.len() >= 2, "the race has multiple arms");
}

/// Cancelling the session token from "outside" (between events) stops
/// the race promptly with an Undetermined verdict.
#[test]
fn cancellation_stops_the_session() {
    let mut session = AnalysisSession::new(
        fig1::build(),
        Property::True,
        &[EngineKind::Alg3Explicit, EngineKind::Scheme1Explicit],
        &SessionConfig::new(),
    )
    .unwrap();
    let token = session.cancel_token();
    let mut rounds_after_cancel = 0;
    let mut cancelled = false;
    while let Some(event) = session.next_event() {
        if let SessionEvent::RoundCompleted { k, .. } = &event {
            if cancelled {
                rounds_after_cancel += 1;
            }
            if *k == 2 && !cancelled {
                token.cancel();
                cancelled = true;
            }
        }
    }
    // In-flight arms may each finish the round they were on, but no
    // new rounds start after the cancel is observed.
    assert!(
        rounds_after_cancel <= 2,
        "{rounds_after_cancel} rounds ran on"
    );
    let outcome = session.outcome().unwrap().as_ref().unwrap().clone();
    assert!(matches!(outcome.verdict, Verdict::Undetermined { .. }));
}

/// A deadline interrupts a *single round* that would otherwise run far
/// past it: Fig. 2's first explicit context closure diverges, so
/// between-round checks alone would never fire.
#[test]
fn deadline_is_honored_mid_round() {
    let budget = ExploreBudget {
        max_states: usize::MAX / 2,
        max_states_per_context: usize::MAX / 2,
        max_stack_depth: usize::MAX / 2,
        ..ExploreBudget::default()
    }
    .with_interrupt(Interrupt::none().with_timeout(Duration::from_millis(50)));
    let start = std::time::Instant::now();
    let mut engine = cuba::explore::ExplicitEngine::new(fig2::build(), budget);
    let err = engine.advance().unwrap_err();
    assert_eq!(err, cuba::explore::ExploreError::DeadlineExceeded);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "mid-round deadline ignored for {:?}",
        start.elapsed()
    );
}

/// A cancel token interrupts a diverging round the same way.
#[test]
fn cancel_token_is_honored_mid_round() {
    let token = CancelToken::new();
    let budget = ExploreBudget {
        max_states: usize::MAX / 2,
        max_states_per_context: usize::MAX / 2,
        max_stack_depth: usize::MAX / 2,
        ..ExploreBudget::default()
    }
    .with_interrupt(Interrupt::none().with_cancel(token.clone()));
    let mut engine = cuba::explore::ExplicitEngine::new(fig2::build(), budget);
    // Cancel from a watchdog thread while advance() is spinning.
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
    });
    let err = engine.advance().unwrap_err();
    handle.join().unwrap();
    assert_eq!(err, cuba::explore::ExploreError::Cancelled);
}

/// The portfolio race (round-robin and threaded) agrees with the
/// classic fused driver on both running examples.
#[test]
fn portfolio_agrees_with_fused_driver() {
    for (cpds, label) in [(fig1::build(), "fig1"), (fig2::build(), "fig2")] {
        let fused = Cuba::new(cpds.clone(), Property::True)
            .run(&CubaConfig::default())
            .unwrap();
        let round_robin = Portfolio::auto().run(cpds.clone(), Property::True).unwrap();
        let threaded = Portfolio::auto()
            .run_parallel(cpds, Property::True, None)
            .unwrap();
        assert_eq!(
            fused.verdict.is_safe(),
            round_robin.verdict.is_safe(),
            "{label}"
        );
        assert_eq!(
            fused.verdict.is_safe(),
            threaded.verdict.is_safe(),
            "{label}"
        );
        assert_eq!(fused.fcr_holds, round_robin.fcr_holds, "{label}");
    }
}

/// `run_suite` verifies a mixed batch with bounded parallelism and
/// preserves input order.
#[test]
fn run_suite_handles_mixed_batch() {
    let problems = vec![
        (fig1::build(), Property::True),
        (fig2::build(), Property::True),
        (
            fig1::build(),
            Property::never_visible(vis(1, &[Some(2), Some(6)])),
        ),
    ];
    for parallelism in [1, 2, 8] {
        let results = Portfolio::auto().run_suite(problems.clone(), parallelism);
        assert_eq!(results.len(), 3);
        assert!(matches!(
            results[0].as_ref().unwrap().verdict,
            Verdict::Safe { k: 5, .. }
        ));
        assert!(results[1].as_ref().unwrap().verdict.is_safe());
        assert!(matches!(
            results[2].as_ref().unwrap().verdict,
            Verdict::Unsafe { k: 5, .. }
        ));
    }
}
