//! Integration of the Boolean-program frontend with the verifier: the
//! paper's Fig. 2 source code, translated and analyzed end to end,
//! must behave like the hand-built CPDS model of the same program.

use cuba::benchmarks::fig2;
use cuba::boolprog::{parse, translate};
use cuba::core::{check_fcr, scheme1_symbolic, Cuba, CubaConfig, Property, Scheme1Config, Verdict};

const FIG2_SOURCE: &str = r#"
    decl x;
    void foo() {
      l2: if (*) { l3: call foo(); }
      l4: while (x) { skip; }
      l5: x := 1;
    }
    void bar() {
      l6: if (*) { l7: call bar(); }
      l8: while (!x) { skip; }
      l9: x := 0;
    }
    void main() {
      thread_create(foo);
      thread_create(bar);
    }
"#;

#[test]
fn fig2_source_translates_like_the_hand_model() {
    let program = parse(FIG2_SOURCE).unwrap();
    let translated = translate(&program).unwrap();

    // Same shape: two threads, recursion in both, FCR fails in both.
    assert_eq!(translated.cpds.num_threads(), 2);
    let translated_fcr = check_fcr(&translated.cpds);
    let hand_fcr = check_fcr(&fig2::build());
    assert_eq!(translated_fcr.holds(), hand_fcr.holds());
    assert_eq!(
        translated_fcr.offending_threads(),
        hand_fcr.offending_threads()
    );

    // Same analysis outcome: the symbolic (Sk) sequence collapses at a
    // small bound for both encodings (Ex. 8's R2 = R3 phenomenon).
    let hand =
        scheme1_symbolic(&fig2::build(), &Property::True, &Scheme1Config::default()).unwrap();
    let ours =
        scheme1_symbolic(&translated.cpds, &Property::True, &Scheme1Config::default()).unwrap();
    match (&hand.verdict, &ours.verdict) {
        (Verdict::Safe { k: k1, .. }, Verdict::Safe { k: k2, .. }) => {
            assert!(*k1 <= 6 && *k2 <= 8, "both collapse early: {k1}, {k2}");
        }
        other => panic!("expected two collapses, got {other:?}"),
    }
}

#[test]
fn fig2_assertion_variant_is_verified() {
    // Instrument foo with the assertion that x really was 0 when the
    // spin loop exits — safe, since the loop guard guarantees it …
    let safe = r#"
        decl x;
        void foo() {
          if (*) { call foo(); }
          while (x) { skip; }
          x := 1;
        }
        void bar() {
          if (*) { call bar(); }
          while (!x) { skip; }
          assert(x);
          x := 0;
        }
        void main() { thread_create(foo); thread_create(bar); }
    "#;
    let t = translate(&parse(safe).unwrap()).unwrap();
    let property = t.error_free_property();
    let outcome = Cuba::new(t.cpds, property)
        .run(&CubaConfig::default())
        .unwrap();
    assert!(outcome.verdict.is_safe(), "{:?}", outcome.verdict);
}

#[test]
fn fig2_wrong_assertion_is_refuted() {
    // … but asserting ¬x at the same point is wrong: foo can set x
    // between bar's loop exit and the assert? No — bar's loop exits
    // when x is 1, so ¬x is immediately false. Unsafe at small k.
    let unsafe_src = r#"
        decl x;
        void foo() {
          if (*) { call foo(); }
          while (x) { skip; }
          x := 1;
        }
        void bar() {
          if (*) { call bar(); }
          while (!x) { skip; }
          assert(!x);
          x := 0;
        }
        void main() { thread_create(foo); thread_create(bar); }
    "#;
    let t = translate(&parse(unsafe_src).unwrap()).unwrap();
    let property = t.error_free_property();
    let outcome = Cuba::new(t.cpds, property)
        .run(&CubaConfig::default())
        .unwrap();
    match outcome.verdict {
        Verdict::Unsafe { k, .. } => assert!(k <= 4, "bug at small bound, got {k}"),
        other => panic!("expected Unsafe, got {other:?}"),
    }
}

#[test]
fn translated_witnesses_replay() {
    let src = r#"
        decl flag;
        void setter() { flag := 1; }
        void checker() { assert(!flag); }
        void main() { thread_create(setter); thread_create(checker); }
    "#;
    let t = translate(&parse(src).unwrap()).unwrap();
    let property = t.error_free_property();
    let outcome = Cuba::new(t.cpds.clone(), property)
        .run(&CubaConfig::default())
        .unwrap();
    match outcome.verdict {
        Verdict::Unsafe {
            witness: Some(w), ..
        } => {
            assert!(w.replay(&t.cpds));
            // The final state is the error state.
            assert_eq!(w.end().q, t.error_state);
        }
        other => panic!("expected witnessed refutation, got {other:?}"),
    }
}

#[test]
fn symbol_descriptions_cover_all_stack_symbols() {
    let t = translate(&parse(FIG2_SOURCE).unwrap()).unwrap();
    for thread in 0..t.cpds.num_threads() {
        for sym in t.cpds.thread(thread).used_symbols() {
            let (name, point, _locals) = t
                .describe_symbol(sym)
                .unwrap_or_else(|| panic!("undecodable symbol {sym}"));
            assert!(name == "foo" || name == "bar");
            let layout = t.functions.iter().find(|f| f.name == name).unwrap();
            assert!(point < layout.num_points);
        }
    }
}
