//! The Windows NT Bluetooth driver scenario from the paper's
//! evaluation (Table 2, programs 1–3): find the historical races in
//! versions 1 and 2, prove version 3 correct for unboundedly many
//! context switches.
//!
//! ```text
//! cargo run --release --example bluetooth_driver
//! ```

use cuba::benchmarks::bluetooth::{build, property, Version};
use cuba::core::{check_fcr, Cuba, CubaConfig, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (version, name) in [
        (Version::V1, "v1 (original driver)"),
        (Version::V2, "v2 (first fix attempt)"),
        (Version::V3, "v3 (fully fixed)"),
    ] {
        println!("== Bluetooth {name}, 1 stopper + 1 adder + counter thread ==");
        let cpds = build(version, 1, 1);
        println!("   FCR: {}", check_fcr(&cpds));
        let outcome = Cuba::new(cpds, property()).run(&CubaConfig::default())?;
        match &outcome.verdict {
            Verdict::Unsafe { k, witness } => {
                println!("   UNSAFE: driver assertion fails within {k} contexts");
                if let Some(w) = witness {
                    println!(
                        "   counterexample: {} steps, {} contexts",
                        w.len(),
                        w.num_contexts()
                    );
                }
            }
            Verdict::Safe { k, method } => {
                println!("   SAFE for any context bound (converged at k = {k} via {method})");
            }
            Verdict::Undetermined { reason } => println!("   undetermined: {reason}"),
        }
        println!(
            "   engine: {}, stored states: {}, time: {:?}\n",
            outcome.engine, outcome.states, outcome.duration
        );
    }
    Ok(())
}
