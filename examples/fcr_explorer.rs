//! Explore finite context reachability (paper §5): run the FCR check
//! on every benchmark, show the witnessing pushdown store automata,
//! and demonstrate what goes wrong when explicit exploration is
//! attempted without FCR.
//!
//! ```text
//! cargo run --release --example fcr_explorer
//! ```

use cuba::automata::psa_to_dot;
use cuba::benchmarks::suite::table2_suite;
use cuba::benchmarks::{fig1, fig2};
use cuba::core::{check_fcr, fcr_psa};
use cuba::explore::{ExplicitEngine, ExploreBudget};

fn main() {
    println!("FCR verdicts across the Table 2 suite:");
    for bench in table2_suite() {
        let report = check_fcr(&bench.cpds);
        println!("  {:<18} {}", bench.label(), report);
    }

    // The witnessing automata for the running examples (Fig. 4).
    println!("\nFig. 4 automata (dot):");
    let fig1 = fig1::build();
    let psa = fcr_psa(fig1.thread(1), fig1.num_shared());
    println!("{}", psa_to_dot(&psa, "fig1_thread2"));

    // What happens without FCR: budgets catch the divergence.
    let fig2 = fig2::build();
    let mut engine = ExplicitEngine::new(fig2, ExploreBudget::tiny());
    match engine.advance() {
        Err(e) => println!("explicit exploration of Fig. 2 fails as expected: {e}"),
        Ok(_) => println!("unexpected success"),
    }
}
