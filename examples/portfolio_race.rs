//! The §6 engine race, live: stream per-round events from an
//! [`AnalysisSession`], race a buggy problem where the CBA refuter
//! competes with the convergence engines, enforce a deadline, and
//! batch-verify a small suite with `Portfolio::run_suite`.
//!
//! ```text
//! cargo run --release --example portfolio_race
//! ```

use std::time::Duration;

use cuba::benchmarks::{fig1, fig2};
use cuba::core::{Portfolio, Property, SessionConfig, SessionEvent, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Watch the observation sequences evolve: one RoundCompleted
    //    per engine per bound, then the conclusion and the verdict.
    println!("== Fig. 1: streaming the race ==");
    let mut session = Portfolio::auto().session(fig1::build(), Property::True)?;
    for event in &mut session {
        println!("  {event}");
    }
    let outcome = session.into_outcome()?;
    println!("  => {} (by {})\n", outcome.verdict, outcome.engine);

    // 2. A buggy problem: the refuter arm races the convergence
    //    engines; whichever arm hits the violation first wins, and the
    //    witness replays.
    println!("== Fig. 1 with a reachable target: the refuter race ==");
    let property = Property::never_visible(fig1::deep_visible());
    let outcome = Portfolio::auto().run(fig1::build(), property)?;
    println!("  => {} (by {})", outcome.verdict, outcome.engine);
    if let Verdict::Unsafe {
        witness: Some(w), ..
    } = &outcome.verdict
    {
        println!(
            "  counterexample: {} steps, {} contexts\n",
            w.len(),
            w.num_contexts()
        );
    }

    // 3. Deadlines are honored *mid-round*: Fig. 2's explicit closure
    //    would diverge, the symbolic arms converge quickly — and with
    //    a tiny timeout even they give up cooperatively.
    println!("== Fig. 2 under a 1µs deadline ==");
    let strict = Portfolio::auto().with_config(SessionConfig {
        timeout: Some(Duration::from_micros(1)),
        ..SessionConfig::new()
    });
    let outcome = strict.run(fig2::build(), Property::True)?;
    println!("  => {}\n", outcome.verdict);

    // 4. Batch verification: a small suite, two problems in flight.
    println!("== run_suite: batch verification ==");
    let problems = vec![
        (fig1::build(), Property::True),
        (fig2::build(), Property::True),
        (fig1::build(), Property::never_visible(fig1::deep_visible())),
    ];
    let results = Portfolio::auto().run_suite(problems, 2);
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(o) => println!("  problem {i}: {} (by {})", o.verdict, o.engine),
            Err(e) => println!("  problem {i}: error: {e}"),
        }
    }

    // Demonstrate event filtering: count how many rounds each engine
    // contributed on a fresh streaming run.
    println!("\n== per-engine round counts on Fig. 1 ==");
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    Portfolio::auto().run_with(fig1::build(), Property::True, |event| {
        if let SessionEvent::RoundCompleted { engine, .. } = event {
            *counts.entry(engine.to_string()).or_default() += 1;
        }
    })?;
    for (engine, rounds) in counts {
        println!("  {engine}: {rounds} rounds");
    }
    Ok(())
}
