//! Quickstart: build the paper's Fig. 1 system with the public API,
//! prove a safety property for an unbounded number of thread contexts,
//! and find a bug with a replayable counterexample.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cuba::core::{Cuba, CubaConfig, Property, Verdict};
use cuba::pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym, VisibleState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = SharedState;
    let s = StackSym;

    // Thread 1: two overwrites cycling the shared state (Fig. 1, Δ1).
    let mut p1 = PdsBuilder::new(4, 3);
    p1.overwrite(q(0), s(1), q(1), s(2))?;
    p1.overwrite(q(3), s(2), q(0), s(1))?;

    // Thread 2: pop / overwrite / push — a growing call stack (Δ2).
    let mut p2 = PdsBuilder::new(4, 7);
    p2.pop(q(0), s(4), q(0))?;
    p2.overwrite(q(1), s(4), q(2), s(5))?;
    p2.push(q(2), s(5), q(3), s(4), s(6))?;

    let cpds = CpdsBuilder::new(4, q(0))
        .thread(p1.build()?, [s(1)])
        .thread(p2.build()?, [s(4)])
        .build()?;
    println!(
        "system: {} threads, initial state {}",
        cpds.num_threads(),
        cpds.initial_state()
    );

    // 1. Prove: the visible state ⟨2|1,5⟩ is unreachable for ANY
    //    number of contexts. Context-bounded tools cannot conclude
    //    this; CUBA detects convergence of (T(Rk)) at k = 5.
    let safe_target = VisibleState::new(q(2), vec![Some(s(1)), Some(s(5))]);
    let outcome = Cuba::new(cpds.clone(), Property::never_visible(safe_target.clone()))
        .run(&CubaConfig::default())?;
    println!("\nproperty never({safe_target}): {}", outcome.verdict);
    println!(
        "  engine: {}, rounds: {}, states: {}",
        outcome.engine, outcome.rounds, outcome.states
    );
    assert!(outcome.verdict.is_safe());

    // 2. Refute: ⟨1|2,6⟩ IS reachable — first at context bound 5.
    let bug_target = VisibleState::new(q(1), vec![Some(s(2)), Some(s(6))]);
    let outcome = Cuba::new(cpds.clone(), Property::never_visible(bug_target.clone()))
        .run(&CubaConfig::default())?;
    println!("\nproperty never({bug_target}): {}", outcome.verdict);
    if let Verdict::Unsafe {
        k,
        witness: Some(w),
    } = &outcome.verdict
    {
        println!("  bug found at context bound {k}; counterexample path:");
        println!("  {w}");
        assert!(w.replay(&cpds), "witness must replay");
    }
    Ok(())
}
