//! Verify a concurrent Boolean program written in the App. B language:
//! the paper's Fig. 2 foo/bar source, straight from the figure, plus a
//! racy ticket protocol whose bug CUBA pinpoints.
//!
//! ```text
//! cargo run --release --example boolean_program
//! ```

use cuba::boolprog::{parse, translate};
use cuba::core::{check_fcr, Cuba, CubaConfig, Verdict};

const FIG2: &str = r#"
    decl x;
    void foo() {
      l2: if (*) { l3: call foo(); }
      l4: while (x) { skip; }
      l5: x := 1;
    }
    void bar() {
      l6: if (*) { l7: call bar(); }
      l8: while (!x) { skip; }
      l9: x := 0;
    }
    void main() {
      thread_create(foo);
      thread_create(bar);
    }
"#;

const RACY_TICKET: &str = r#"
    decl taken;
    void customer() {
      // check-then-take without atomicity: two customers can both
      // pass the check before either takes the ticket.
      assume(!taken);
      assert(!taken);
      taken := 1;
    }
    void main() { thread_create(customer); thread_create(customer); }
"#;

const FIXED_TICKET: &str = r#"
    decl taken;
    void customer() {
      atomic {
        assume(!taken);
        assert(!taken);
        taken := 1;
      }
    }
    void main() { thread_create(customer); thread_create(customer); }
"#;

fn analyze(name: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(source)?;
    let translated = translate(&program)?;
    println!("== {name} ==");
    println!(
        "   {} threads, {} shared states, {} stack symbols",
        translated.cpds.num_threads(),
        translated.cpds.num_shared(),
        translated.cpds.thread(0).alphabet_size()
    );
    println!("   FCR: {}", check_fcr(&translated.cpds));
    let property = translated.error_free_property();
    let outcome = Cuba::new(translated.cpds.clone(), property).run(&CubaConfig::default())?;
    match &outcome.verdict {
        Verdict::Safe { k, method } => {
            println!("   all assertions hold for any context bound (k = {k}, {method})")
        }
        Verdict::Unsafe { k, .. } => println!("   assertion fails within {k} contexts"),
        Verdict::Undetermined { reason } => println!("   undetermined: {reason}"),
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    analyze("Fig. 2 foo/bar (no assertions, recursion breaks FCR)", FIG2)?;
    analyze("racy ticket protocol", RACY_TICKET)?;
    analyze("fixed ticket protocol (atomic)", FIXED_TICKET)?;
    Ok(())
}
