//! Prove mutual exclusion of Dekker's protocol (Table 2, program 9)
//! for an unbounded number of context switches, then show the proof is
//! not vacuous by refuting a stronger claim.
//!
//! ```text
//! cargo run --example dekker
//! ```

use cuba::benchmarks::dekker;
use cuba::core::{Cuba, CubaConfig, Property, Verdict};
use cuba::pds::StackSym;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpds = dekker::build();
    println!("Dekker's protocol: {} shared states", cpds.num_shared());

    // Mutual exclusion of the two critical sections, context-unbounded.
    let outcome = Cuba::new(cpds.clone(), dekker::property()).run(&CubaConfig::default())?;
    println!("mutual exclusion: {}", outcome.verdict);
    assert!(outcome.verdict.is_safe());

    // Not vacuous: each thread really enters its critical section.
    for thread in 0..2 {
        let reach = Property::MutualExclusion(vec![(thread, dekker::CRITICAL)]);
        let outcome = Cuba::new(cpds.clone(), reach).run(&CubaConfig::default())?;
        match outcome.verdict {
            Verdict::Unsafe { k, .. } => {
                println!("thread {thread} reaches its critical section within {k} contexts")
            }
            other => println!("unexpected: {other}"),
        }
    }

    // And the contention point is genuinely concurrent: both threads
    // can sit at the flag check simultaneously.
    let both_checking = Property::mutex(0, StackSym(1), 1, StackSym(1));
    let outcome = Cuba::new(cpds, both_checking).run(&CubaConfig::default())?;
    println!("both threads at the flag check: {}", outcome.verdict);
    Ok(())
}
